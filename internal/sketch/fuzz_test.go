package sketch

import (
	"encoding/binary"
	"testing"

	"dbre/internal/value"
)

// FuzzSketchEstimate pins the tier's two advertised guarantees on
// arbitrary inputs: (1) the HyperLogLog estimate stays inside its
// advertised error envelope of the exact distinct count, and (2) the
// refutation witnesses are sound — a signature pair whose underlying
// value sets are in a containment relation is never refuted, and
// DisjointSets never fires on intersecting sets. Guarantee (2) is the
// one bit-identical discovery results rest on.
func FuzzSketchEstimate(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(12), uint8(16))
	f.Add([]byte("hello world, distinct values here"), uint8(4), uint8(1))
	f.Add(make([]byte, 4096), uint8(18), uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, prec, k uint8) {
		cfg := Config{Precision: int(prec), SignatureK: int(k)}.WithDefaults()

		// Derive a value stream from the fuzz bytes: overlapping 4-byte
		// windows as ints, giving collisions-by-construction so the
		// distinct count differs from the stream length.
		h := NewHLL(cfg.Precision)
		subSig := NewBottomK(cfg.SignatureK)  // values at even offsets
		supSig := NewBottomK(cfg.SignatureK)  // all values
		disjSig := NewBottomK(cfg.SignatureK) // shifted, disjoint stream
		exact := make(map[uint64]bool)
		shared := false
		for i := 0; i+4 <= len(data); i++ {
			v := value.NewInt(int64(binary.LittleEndian.Uint32(data[i:])))
			hv := HashValue(v)
			h.Add(hv)
			exact[hv] = true
			supSig.Add(hv)
			if i%2 == 0 {
				subSig.Add(hv)
			}
			d := value.NewInt(int64(binary.LittleEndian.Uint32(data[i:])) + (1 << 40))
			disjSig.Add(HashValue(d))
			if int64(binary.LittleEndian.Uint32(data[i:])) >= 1<<40 {
				shared = true // streams could actually intersect
			}
		}

		n := float64(len(exact))
		if diff := h.Estimate() - n; diff > h.ErrorBound(n) || -diff > h.ErrorBound(n) {
			t.Fatalf("estimate %v outside bound %v of exact %v", h.Estimate(), h.ErrorBound(n), n)
		}

		// Soundness: the even-offset subset is truly contained in the
		// full set; refuting it would corrupt accepted results.
		if RefuteContainment(subSig, supSig) {
			t.Fatal("refuted a true containment")
		}
		if RefuteContainment(supSig, supSig) {
			t.Fatal("refuted self-containment")
		}
		if est, _, exactEst := EstimateContainment(subSig, supSig); exactEst && est != 1 && subSig.Len() > 0 {
			t.Fatalf("exact containment estimate %v for a true subset", est)
		}
		if !shared && len(exact) > 0 && DisjointSets(supSig, supSig) {
			t.Fatal("DisjointSets fired on identical non-empty sets")
		}
	})
}

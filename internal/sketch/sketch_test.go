package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dbre/internal/value"
)

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a dense range plus avalanche sanity: no
	// two inputs in 0..99999 collide, and outputs are spread.
	seen := make(map[uint64]uint64, 100000)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %d", prev, i, h)
		}
		seen[h] = i
	}
}

func TestHLLSmallRangeExactish(t *testing.T) {
	h := NewHLL(DefaultPrecision)
	for i := 0; i < 100; i++ {
		h.Add(Mix64(uint64(i)))
	}
	// Linear-counting regime: tiny cardinalities are near-exact.
	if est := h.Estimate(); math.Abs(est-100) > 5 {
		t.Fatalf("small-range estimate %v, want ~100", est)
	}
	// Idempotence: re-adding the same hashes changes nothing.
	before := h.Estimate()
	for i := 0; i < 100; i++ {
		h.Add(Mix64(uint64(i)))
	}
	if after := h.Estimate(); after != before {
		t.Fatalf("estimate not idempotent: %v -> %v", before, after)
	}
}

func TestHLLWithinAdvertisedBound(t *testing.T) {
	for _, n := range []int{0, 1, 10, 1000, 50000, 300000} {
		h := NewHLL(DefaultPrecision)
		for i := 0; i < n; i++ {
			h.Add(Mix64(uint64(i)*2654435761 + 12345))
		}
		est := h.Estimate()
		if diff := math.Abs(est - float64(n)); diff > h.ErrorBound(float64(n)) {
			t.Fatalf("n=%d: estimate %v off by %v > bound %v", n, est, diff, h.ErrorBound(float64(n)))
		}
	}
}

func TestBottomKInvariants(t *testing.T) {
	const k = 16
	b := NewBottomK(k)
	rng := rand.New(rand.NewSource(7))
	all := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		h := rng.Uint64()
		b.Add(h)
		b.Add(h) // idempotent
		all[h] = true
	}
	if b.Len() != k || !b.Saturated() {
		t.Fatalf("Len=%d Saturated=%v, want %d true", b.Len(), b.Saturated(), k)
	}
	hs := b.Hashes()
	if !sort.SliceIsSorted(hs, func(i, j int) bool { return hs[i] < hs[j] }) {
		t.Fatal("signature not ascending")
	}
	// Completeness: every observed hash below Threshold is retained, and
	// the retained set is exactly the k smallest observed.
	var sorted []uint64
	for h := range all {
		sorted = append(sorted, h)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 0; i < k; i++ {
		if hs[i] != sorted[i] {
			t.Fatalf("retained[%d]=%d, want k-smallest %d", i, hs[i], sorted[i])
		}
	}
	if b.Threshold() != sorted[k-1] {
		t.Fatalf("Threshold=%d, want %d", b.Threshold(), sorted[k-1])
	}
	for h := range all {
		if h < b.Threshold() && !b.Contains(h) {
			t.Fatalf("completeness violated: %d below threshold but absent", h)
		}
	}
}

func TestBottomKUnsaturatedThreshold(t *testing.T) {
	b := NewBottomK(8)
	b.Add(42)
	if b.Saturated() || b.Threshold() != math.MaxUint64 {
		t.Fatalf("unsaturated signature must advertise MaxUint64 threshold")
	}
}

// sigOf builds a signature over the hashes of ints in vals.
func sigOf(k int, vals []int) *BottomK {
	b := NewBottomK(k)
	for _, v := range vals {
		b.Add(HashValue(value.NewInt(int64(v))))
	}
	return b
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, v)
	}
	return out
}

func TestRefuteContainmentSoundAndEffective(t *testing.T) {
	// Soundness: a true containment is NEVER refuted, at any k.
	for _, k := range []int{4, 64, 256} {
		sub := sigOf(k, rangeInts(0, 500))
		sup := sigOf(k, rangeInts(0, 2000))
		if RefuteContainment(sub, sup) {
			t.Fatalf("k=%d: refuted a true containment", k)
		}
		if RefuteContainment(sub, sub) {
			t.Fatalf("k=%d: refuted self-containment", k)
		}
	}
	// Effectiveness: disjoint same-sized sets refute with certainty at
	// saturating k (the smallest hash of A is below B's threshold and
	// cannot be in B's signature).
	a := sigOf(64, rangeInts(0, 1000))
	b := sigOf(64, rangeInts(5000, 6000))
	if !RefuteContainment(a, b) {
		t.Fatal("disjoint same-sized sets not refuted")
	}
	// Unsaturated signatures are complete: any non-member is a witness.
	small := sigOf(256, rangeInts(0, 100))
	other := sigOf(256, append(rangeInts(1, 100), 12345))
	if !RefuteContainment(small, other) {
		t.Fatal("unsaturated non-containment (missing value 0) not refuted")
	}
}

func TestDisjointSets(t *testing.T) {
	a := sigOf(256, rangeInts(0, 100))
	b := sigOf(256, rangeInts(200, 300))
	if !DisjointSets(a, b) || !DisjointSets(b, a) {
		t.Fatal("disjoint unsaturated sets not proven disjoint")
	}
	c := sigOf(256, rangeInts(99, 150))
	if DisjointSets(a, c) {
		t.Fatal("intersecting sets claimed disjoint")
	}
	// Saturated signatures can never prove disjointness.
	big := sigOf(16, rangeInts(1000, 2000))
	far := sigOf(16, rangeInts(9000, 9900))
	if DisjointSets(big, far) {
		t.Fatal("saturated signature claimed certain disjointness")
	}
}

func TestEstimateContainment(t *testing.T) {
	// Exact regime: both unsaturated -> true distinct-containment ratio.
	a := sigOf(256, rangeInts(0, 100))
	b := sigOf(256, rangeInts(50, 200))
	est, n, exact := EstimateContainment(a, b)
	if !exact || n != 100 || est != 0.5 {
		t.Fatalf("est=%v n=%d exact=%v, want 0.5 100 true", est, n, exact)
	}
	// Sampled regime: estimate within a loose statistical envelope.
	a = sigOf(128, rangeInts(0, 10000))
	b = sigOf(128, rangeInts(5000, 20000))
	est, n, exact = EstimateContainment(a, b)
	if exact || n == 0 {
		t.Fatalf("saturated estimate claims exactness (n=%d)", n)
	}
	if est < 0.2 || est > 0.8 {
		t.Fatalf("containment estimate %v (n=%d) far from true 0.5", est, n)
	}
}

func TestRowSampleDeterministicStable(t *testing.T) {
	// Same rows in any order -> same sample; appending extends stably.
	a := NewRowSample(32)
	for i := 0; i < 1000; i++ {
		a.AddRow(i)
	}
	b := NewRowSample(32)
	for i := 999; i >= 0; i-- {
		b.AddRow(i)
	}
	ra, rb := a.Rows(), b.Rows()
	if len(ra) != 32 || len(rb) != 32 {
		t.Fatalf("sample sizes %d/%d, want 32", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("order-dependent sample at %d: %d vs %d", i, ra[i], rb[i])
		}
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Precision != DefaultPrecision || c.SignatureK != DefaultSignatureK || c.SampleK != DefaultSampleK {
		t.Fatalf("zero config did not default: %+v", c)
	}
	c = Config{Precision: 99, SignatureK: -1, SampleK: -1}.WithDefaults()
	if c.Precision != DefaultPrecision || c.SignatureK != DefaultSignatureK || c.SampleK != DefaultSampleK {
		t.Fatalf("out-of-range config did not default: %+v", c)
	}
	keep := Config{Precision: 8, SignatureK: 32, SampleK: 64}.WithDefaults()
	if keep.Precision != 8 || keep.SignatureK != 32 || keep.SampleK != 64 {
		t.Fatalf("valid config mangled: %+v", keep)
	}
}

package paperex

import (
	"sort"
	"testing"

	"dbre/internal/appscan"
	"dbre/internal/sql/exec"
	"dbre/internal/table"
)

// TestE1_KN verifies the Section 5 constraint sets K and N, both from the
// hand-built catalog and from parsing the DDL text (experiment E1).
func TestE1_KN(t *testing.T) {
	check := func(t *testing.T, db *table.Database) {
		t.Helper()
		cat := db.Catalog()
		var ks []string
		for _, k := range cat.Keys() {
			ks = append(ks, k.String())
		}
		wantK := []string{
			"Assignment.{dep, emp, proj}",
			"Department.dep",
			"HEmployee.{date, no}",
			"Person.id",
		}
		if len(ks) != len(wantK) {
			t.Fatalf("K = %v", ks)
		}
		for i := range wantK {
			if ks[i] != wantK[i] {
				t.Errorf("K[%d] = %q, want %q", i, ks[i], wantK[i])
			}
		}
		var ns []string
		for _, n := range cat.NotNulls() {
			ns = append(ns, n.String())
		}
		wantN := []string{
			"Assignment.dep", "Assignment.emp", "Assignment.proj",
			"Department.dep", "Department.location",
			"HEmployee.date", "HEmployee.no",
			"Person.id",
		}
		if len(ns) != len(wantN) {
			t.Fatalf("N = %v", ns)
		}
		for i := range wantN {
			if ns[i] != wantN[i] {
				t.Errorf("N[%d] = %q, want %q", i, ns[i], wantN[i])
			}
		}
	}
	t.Run("hand-built", func(t *testing.T) { check(t, table.NewDatabase(Catalog())) })
	t.Run("parsed-DDL", func(t *testing.T) {
		db, errs := exec.LoadScript(DDL)
		if len(errs) > 0 {
			t.Fatalf("DDL: %v", errs)
		}
		check(t, db)
	})
}

// TestE2_Q verifies that scanning the application programs yields exactly
// the paper's equi-join set Q (experiment E2).
func TestE2_Q(t *testing.T) {
	var rep appscan.Report
	var snippets []appscan.Snippet
	var names []string
	for name := range Programs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snippets = append(snippets, appscan.ScanSource(name, Programs[name], &rep)...)
	}
	if rep.ParseFailures != 0 {
		t.Fatalf("parse failures: %v", rep.FailureSamples)
	}
	got := appscan.NewExtractor(Catalog()).ExtractQ(snippets)
	want := Q()
	if got.Len() != want.Len() {
		t.Fatalf("Q has %d joins:\n%s\nwant:\n%s", got.Len(), got, want)
	}
	for _, q := range want.All() {
		if !got.Contains(q) {
			t.Errorf("missing %s", q)
		}
	}
}

// TestExtensionCardinalities verifies the counts the paper's worked example
// quotes in Section 6.1.
func TestExtensionCardinalities(t *testing.T) {
	db := Database()
	count := func(rel string, attrs ...string) int {
		n, err := db.MustTable(rel).DistinctCount(attrs)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	joinCount := func(rk string, ak string, rl string, al string) int {
		n, err := table.JoinDistinctCount(db.MustTable(rk), []string{ak}, db.MustTable(rl), []string{al})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count("Person", "id"); got != 2200 {
		t.Errorf("‖Person[id]‖ = %d, want 2200", got)
	}
	if got := count("HEmployee", "no"); got != 1550 {
		t.Errorf("‖HEmployee[no]‖ = %d, want 1550", got)
	}
	if got := joinCount("HEmployee", "no", "Person", "id"); got != 1550 {
		t.Errorf("‖HEmployee[no] ⋈ Person[id]‖ = %d, want 1550", got)
	}
	if got := count("Assignment", "dep"); got != 150 {
		t.Errorf("‖Assignment[dep]‖ = %d, want 150", got)
	}
	if got := count("Department", "dep"); got != 125 {
		t.Errorf("‖Department[dep]‖ = %d, want 125", got)
	}
	if got := joinCount("Assignment", "dep", "Department", "dep"); got != 100 {
		t.Errorf("‖Assignment[dep] ⋈ Department[dep]‖ = %d, want 100", got)
	}
	if got := count("Department", "emp"); got != NumManagers {
		t.Errorf("‖Department[emp]‖ = %d", got)
	}
	if got := count("Assignment", "emp"); got != NumAssignEmps {
		t.Errorf("‖Assignment[emp]‖ = %d", got)
	}
	if got := count("Department", "proj"); got != NumDeptProjs {
		t.Errorf("‖Department[proj]‖ = %d", got)
	}
	if got := count("Assignment", "proj"); got != NumAssignProjs {
		t.Errorf("‖Assignment[proj]‖ = %d", got)
	}
}

// holdsFD checks a single-attribute FD lhs → rhs on a relation by brute
// force, NULL-LHS tuples skipped.
func holdsFD(t *testing.T, db *table.Database, rel, lhs, rhs string) bool {
	t.Helper()
	tab := db.MustTable(rel)
	li, ok := tab.ColIndex(lhs)
	if !ok {
		t.Fatalf("%s has no %s", rel, lhs)
	}
	ri, ok := tab.ColIndex(rhs)
	if !ok {
		t.Fatalf("%s has no %s", rel, rhs)
	}
	seen := make(map[string]string)
	for i := 0; i < tab.Len(); i++ {
		row := tab.Row(i)
		if row[li].IsNull() {
			continue
		}
		k, v := row[li].Key(), row[ri].Key()
		if prev, dup := seen[k]; dup && prev != v {
			return false
		}
		seen[k] = v
	}
	return true
}

// TestPlantedFDs verifies the extension satisfies exactly the dependencies
// the paper's session elicits and violates the ones it rejects.
func TestPlantedFDs(t *testing.T) {
	db := Database()
	mustHold := [][3]string{
		{"Department", "emp", "skill"},
		{"Department", "emp", "proj"},
		{"Assignment", "proj", "project-name"},
	}
	mustFail := [][3]string{
		{"HEmployee", "no", "salary"},         // → Employee is hidden
		{"Assignment", "proj", "date"},        // only project-name in RHS
		{"Assignment", "emp", "date"},         // Assignment.emp given up
		{"Assignment", "emp", "project-name"}, //
		{"Assignment", "dep", "date"},         // Other-Dept stays hidden
		{"Assignment", "dep", "project-name"}, //
		{"Department", "proj", "emp"},         // Department.proj given up
		{"Department", "proj", "skill"},       //
	}
	for _, f := range mustHold {
		if !holdsFD(t, db, f[0], f[1], f[2]) {
			t.Errorf("FD %s: %s -> %s should hold", f[0], f[1], f[2])
		}
	}
	for _, f := range mustFail {
		if holdsFD(t, db, f[0], f[1], f[2]) {
			t.Errorf("FD %s: %s -> %s should fail", f[0], f[1], f[2])
		}
	}
}

// TestPlantedINDs verifies the value-set relationships behind Section 6.1.
func TestPlantedINDs(t *testing.T) {
	db := Database()
	contains := func(lr, la, rr, ra string) bool {
		ok, err := table.ContainedIn(db.MustTable(lr), []string{la}, db.MustTable(rr), []string{ra})
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if !contains("HEmployee", "no", "Person", "id") {
		t.Error("HEmployee[no] ⊆ Person[id] must hold")
	}
	if !contains("Department", "emp", "HEmployee", "no") {
		t.Error("Department[emp] ⊆ HEmployee[no] must hold")
	}
	if !contains("Assignment", "emp", "HEmployee", "no") {
		t.Error("Assignment[emp] ⊆ HEmployee[no] must hold")
	}
	if !contains("Department", "proj", "Assignment", "proj") {
		t.Error("Department[proj] ⊆ Assignment[proj] must hold")
	}
	// The NEI: neither direction holds.
	if contains("Assignment", "dep", "Department", "dep") ||
		contains("Department", "dep", "Assignment", "dep") {
		t.Error("Assignment.dep / Department.dep must be a proper NEI")
	}
}

// TestCountsViaSQL re-verifies the paper's worked cardinalities through the
// SQL executor — the exact "select count distinct" queries the paper's
// notation defines, answered by the same engine the elicitation uses.
func TestCountsViaSQL(t *testing.T) {
	db := Database()
	count := func(src string) int64 {
		t.Helper()
		res, err := exec.QueryString(db, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return res.Rows[0][0].Int()
	}
	if got := count(`SELECT COUNT(DISTINCT id) FROM Person`); got != 2200 {
		t.Errorf("‖Person[id]‖ via SQL = %d", got)
	}
	if got := count(`SELECT COUNT(DISTINCT no) FROM HEmployee`); got != 1550 {
		t.Errorf("‖HEmployee[no]‖ via SQL = %d", got)
	}
	// The N_kl quantity as a DISTINCT join query.
	res, err := exec.QueryString(db,
		`SELECT DISTINCT h.no FROM HEmployee h, Person p WHERE h.no = p.id`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1550 {
		t.Errorf("‖HEmployee[no] ⋈ Person[id]‖ via SQL = %d", res.Len())
	}
	// And the INTERSECT spelling for the NEI counts.
	res2, err := exec.QueryString(db,
		`SELECT dep FROM Assignment INTERSECT SELECT dep FROM Department`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 100 {
		t.Errorf("shared departments via INTERSECT = %d", res2.Len())
	}
}

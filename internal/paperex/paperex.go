// Package paperex builds the paper's running example (Section 5): the
// four-relation denormalized schema, a database extension matching the
// worked cardinalities of Section 6.1 (‖Person[id]‖ = 2200,
// ‖HEmployee[no]‖ = 1550, the 150/125/100 Assignment–Department NEI, ...),
// the application programs whose equi-joins form Q, and the scripted expert
// session the paper narrates. The exact-reproduction experiments E1–E7 all
// run against this fixture.
package paperex

import (
	"fmt"
	"time"

	"dbre/internal/deps"
	"dbre/internal/expert"
	"dbre/internal/relation"
	"dbre/internal/table"
	"dbre/internal/value"
)

// Cardinalities fixed by the paper's worked example.
const (
	NumPersons      = 2200 // ‖Person[id]‖
	NumEmployees    = 1550 // ‖HEmployee[no]‖, all of them persons
	NumDoubleSalary = 100  // employees with a second salary record
	NumDepartments  = 125  // ‖Department[dep]‖
	NumManagers     = 100  // ‖Department[emp]‖ (depts 121-125 unmanaged)
	NumSecondDept   = 20   // managers running a second department
	NumAssignDeps   = 150  // ‖Assignment[dep]‖
	NumSharedDeps   = 100  // ‖Assignment[dep] ⋈ Department[dep]‖
	NumAssignEmps   = 800  // ‖Assignment[emp]‖
	NumDeptProjs    = 80   // ‖Department[proj]‖
	NumAssignProjs  = 200  // ‖Assignment[proj]‖ (⊇ the department ones)
)

// DDL is the Section 5 schema as a legacy dictionary would declare it.
const DDL = `
CREATE TABLE Person (
    id        INTEGER PRIMARY KEY,
    name      VARCHAR(40),
    street    VARCHAR(60),
    number    INTEGER,
    zip-code  VARCHAR(10),
    state     VARCHAR(20)
);
CREATE TABLE HEmployee (
    no        INTEGER,
    date      DATE,
    salary    FLOAT,
    PRIMARY KEY (no, date)
);
CREATE TABLE Department (
    dep       INTEGER PRIMARY KEY,
    emp       INTEGER,
    skill     VARCHAR(30),
    location  VARCHAR(40) NOT NULL,
    proj      INTEGER
);
CREATE TABLE Assignment (
    emp          INTEGER,
    dep          INTEGER,
    proj         INTEGER,
    date         DATE,
    project-name VARCHAR(60),
    PRIMARY KEY (emp, dep, proj)
);
`

// Programs maps file names to application-program sources. Together they
// express exactly the five equi-joins of the paper's set Q, through the
// three host-language shapes the scanner understands.
var Programs = map[string]string{
	// Personnel report: HEmployee[no] ⋈ Person[id].
	"reports/personnel.sql": `
-- yearly personnel report
SELECT p.name, p.state, h.salary
FROM HEmployee h, Person p
WHERE h.no = p.id
ORDER BY p.name;`,

	// Manager screen: Department[emp] ⋈ HEmployee[no].
	"forms/managers.cob": `000100 IDENTIFICATION DIVISION.
000200 PROGRAM-ID. MANAGERS.
000300* DISPLAY THE SALARY OF EACH DEPARTMENT MANAGER
000400 PROCEDURE DIVISION.
000500     EXEC SQL
000600         SELECT d.skill, h.salary INTO :ws-skill, :ws-sal
000700         FROM Department d, HEmployee h
000800         WHERE d.emp = h.no AND d.dep = :ws-dep
000900     END-EXEC.`,

	// Assignment batch: Assignment[emp] ⋈ HEmployee[no].
	"batch/assign.c": `
#include <stdio.h>
/* list assignments of employees on payroll */
int list_assignments(void) {
	char *query =
		"SELECT a.proj, a.date FROM Assignment a "
		"WHERE a.emp IN (SELECT h.no FROM HEmployee h)";
	return run_query(query);
}`,

	// Department reconciliation: Assignment[dep] ⋈ Department[dep].
	"batch/depts.sql": `
SELECT a.emp, d.location
FROM Assignment a, Department d
WHERE a.dep = d.dep;`,

	// Project cross-check: Department[proj] ⋈ Assignment[proj].
	"reports/projects.sql": `
SELECT proj FROM Department
INTERSECT
SELECT proj FROM Assignment;`,
}

// Catalog builds the Section 5 schema directly (equivalent to parsing DDL).
func Catalog() *relation.Catalog {
	attr := func(name string, k value.Kind) relation.Attribute {
		return relation.Attribute{Name: name, Type: k}
	}
	return relation.MustCatalog(
		relation.MustSchema("Person", []relation.Attribute{
			attr("id", value.KindInt), attr("name", value.KindString),
			attr("street", value.KindString), attr("number", value.KindInt),
			attr("zip-code", value.KindString), attr("state", value.KindString),
		}, relation.NewAttrSet("id")),
		relation.MustSchema("HEmployee", []relation.Attribute{
			attr("no", value.KindInt), attr("date", value.KindDate),
			attr("salary", value.KindFloat),
		}, relation.NewAttrSet("no", "date")),
		relation.MustSchema("Department", []relation.Attribute{
			attr("dep", value.KindInt), attr("emp", value.KindInt),
			attr("skill", value.KindString),
			{Name: "location", Type: value.KindString, NotNull: true},
			attr("proj", value.KindInt),
		}, relation.NewAttrSet("dep")),
		relation.MustSchema("Assignment", []relation.Attribute{
			attr("emp", value.KindInt), attr("dep", value.KindInt),
			attr("proj", value.KindInt), attr("date", value.KindDate),
			attr("project-name", value.KindString),
		}, relation.NewAttrSet("emp", "dep", "proj")),
	)
}

// deptSkill and deptProj implement the Department FDs the paper elicits:
// emp → skill and emp → proj hold; proj → skill and proj → emp must not
// (managers emp and emp+80 share a project but differ in skill).
func deptSkill(emp int) string { return fmt.Sprintf("skill-%d", emp%7) }
func deptProj(emp int) int     { return (emp-1)%NumDeptProjs + 1 }

// projectName implements Assignment: proj → project-name.
func projectName(proj int) string { return fmt.Sprintf("project-%d", proj) }

// Database builds the extension with the paper's worked cardinalities. All
// declared constraints hold; the FDs the paper elicits hold; the FDs the
// paper rejects (no → salary, emp → project-name, ...) are violated.
func Database() *table.Database {
	db := table.NewDatabase(Catalog())
	iv := value.NewInt
	sv := value.NewString
	fv := value.NewFloat
	d0 := value.NewDate(1996, time.January, 1)
	d1 := value.NewDate(1996, time.June, 1)

	persons := db.MustTable("Person")
	for id := 1; id <= NumPersons; id++ {
		persons.MustInsert(table.Row{
			iv(int64(id)), sv(fmt.Sprintf("person-%d", id)),
			sv(fmt.Sprintf("street-%d", id%50)), iv(int64(id%200 + 1)),
			sv(fmt.Sprintf("zip-%d", id%100)), sv(fmt.Sprintf("state-%d", id%100%10)),
		})
	}

	hemp := db.MustTable("HEmployee")
	for no := 1; no <= NumEmployees; no++ {
		hemp.MustInsert(table.Row{iv(int64(no)), d0, fv(1000 + float64(no%37)*10)})
		if no <= NumDoubleSalary {
			// Second salary record: no → salary must not hold.
			hemp.MustInsert(table.Row{iv(int64(no)), d1, fv(1200 + float64(no%37)*10)})
		}
	}

	dept := db.MustTable("Department")
	for dep := 1; dep <= NumDepartments; dep++ {
		var emp value.Value
		switch {
		case dep <= NumManagers:
			emp = iv(int64(dep))
		case dep <= NumManagers+NumSecondDept:
			// Managers 1..20 run a second department; FD emp → skill,
			// proj forces identical skill and proj here.
			emp = iv(int64(dep - NumManagers))
		default:
			emp = value.Null // departments without a manager
		}
		skill, proj := value.Null, value.Null
		if !emp.IsNull() {
			e := int(emp.Int())
			skill, proj = sv(deptSkill(e)), iv(int64(deptProj(e)))
		}
		dept.MustInsert(table.Row{
			iv(int64(dep)), emp, skill,
			sv(fmt.Sprintf("location-%d", dep%30)), proj,
		})
	}

	assign := db.MustTable("Assignment")
	// Assignment departments span 26..175: 150 distinct, 100 shared with
	// Department's 1..125. Employees 1..800; projects 1..200. Each
	// employee gets three assignments with distinct projects so that
	// emp → project-name fails. Dates alternate in 200-row blocks —
	// coprime with neither 150 nor 200 cycles — so proj → date,
	// dep → date and emp → date all fail.
	row := 0
	for emp := 1; emp <= NumAssignEmps; emp++ {
		for k := 0; k < 3; k++ {
			dep := 26 + (row % NumAssignDeps)
			proj := 1 + (row % NumAssignProjs)
			date := d0
			if row%400 >= 200 {
				date = d1
			}
			assign.MustInsert(table.Row{
				iv(int64(emp)), iv(int64(dep)), iv(int64(proj)),
				date, sv(projectName(proj)),
			})
			row++
		}
	}
	return db
}

// Q returns the paper's Section 5 equi-join set, as the program scanner
// extracts it from Programs.
func Q() *deps.JoinSet {
	side := deps.NewSide
	return deps.NewJoinSet(
		deps.NewEquiJoin(side("HEmployee", "no"), side("Person", "id")),
		deps.NewEquiJoin(side("Department", "emp"), side("HEmployee", "no")),
		deps.NewEquiJoin(side("Assignment", "emp"), side("HEmployee", "no")),
		deps.NewEquiJoin(side("Assignment", "dep"), side("Department", "dep")),
		deps.NewEquiJoin(side("Department", "proj"), side("Assignment", "proj")),
	)
}

// Oracle returns the scripted expert session of the paper:
//
//   - the Assignment–Department NEI is conceptualized as Ass-Dept;
//   - HEmployee.no is conceptualized as the hidden object Employee;
//   - Assignment.dep is (already) the hidden object named Other-Dept;
//   - Assignment.emp and Department.proj are given up;
//   - the FD-split relations are named Manager and Project.
func Oracle() *expert.Scripted {
	s := expert.NewScripted()
	nei := deps.NewEquiJoin(deps.NewSide("Assignment", "dep"), deps.NewSide("Department", "dep"))
	s.NEI[nei.Key()] = expert.NEIDecision{Action: expert.NEINewRelation, Name: "Ass-Dept"}

	s.Hidden[relation.NewRef("HEmployee", "no").Key()] = true
	s.Hidden[relation.NewRef("Assignment", "emp").Key()] = false
	s.Hidden[relation.NewRef("Department", "proj").Key()] = false

	s.Names[relation.NewRef("HEmployee", "no").Key()] = "Employee"
	s.Names[relation.NewRef("Assignment", "dep").Key()] = "Other-Dept"
	s.Names[relation.NewRef("Assignment", "proj").Key()] = "Project"
	s.Names[relation.NewRef("Department", "emp").Key()] = "Manager"
	return s
}

// ExpectedINDs returns the Section 6.1 result: the six inclusion
// dependencies, Ass-Dept included.
func ExpectedINDs() []string {
	return []string{
		"Ass-Dept[dep] << Assignment[dep]",
		"Ass-Dept[dep] << Department[dep]",
		"Assignment[emp] << HEmployee[no]",
		"Department[emp] << HEmployee[no]",
		"Department[proj] << Assignment[proj]",
		"HEmployee[no] << Person[id]",
	}
}

// ExpectedLHS returns the Section 6.2.1 candidate left-hand sides.
func ExpectedLHS() []string {
	return []string{
		"Assignment.emp",
		"Assignment.proj",
		"Department.emp",
		"Department.proj",
		"HEmployee.no",
	}
}

// ExpectedHAfterLHS returns H after LHS-Discovery.
func ExpectedHAfterLHS() []string { return []string{"Assignment.dep"} }

// ExpectedFDs returns the Section 6.2.2 set F.
func ExpectedFDs() []string {
	return []string{
		"Assignment: proj -> project-name",
		"Department: emp -> proj, skill",
	}
}

// ExpectedHFinal returns H after RHS-Discovery.
func ExpectedHFinal() []string { return []string{"Assignment.dep", "HEmployee.no"} }

// ExpectedRIC returns the Section 7 referential integrity constraints (ten
// of them; every IND ends key-based in the example).
func ExpectedRIC() []string {
	return []string{
		"Ass-Dept[dep] << Department[dep]",
		"Ass-Dept[dep] << Other-Dept[dep]",
		"Assignment[dep] << Other-Dept[dep]",
		"Assignment[emp] << Employee[no]",
		"Assignment[proj] << Project[proj]",
		"Department[emp] << Manager[emp]",
		"Employee[no] << Person[id]",
		"HEmployee[no] << Employee[no]",
		"Manager[emp] << Employee[no]",
		"Manager[proj] << Project[proj]",
	}
}

// ExpectedSchemas returns the Section 7 restructured schema rendered in the
// package's text notation ('#' marks primary-key attributes, '*' marks
// other NOT NULL attributes). Section 5 declares the attribute `state`;
// Section 7 of the paper prints `city` in its place — a typo we resolve in
// favor of Section 5.
func ExpectedSchemas() []string {
	return []string{
		"Ass-Dept(#dep)",
		"Assignment(#emp, #dep, #proj, date)",
		"Department(#dep, emp, location*)",
		"Employee(#no)",
		"HEmployee(#no, #date, salary)",
		"Manager(#emp, skill, proj)",
		"Other-Dept(#dep)",
		"Person(#id, name, street, number, zip-code, state)",
		"Project(#proj, project-name)",
	}
}

package fd

import (
	"strings"
	"testing"

	"dbre/internal/deps"
	"dbre/internal/expert"
	"dbre/internal/paperex"
	"dbre/internal/relation"
	"dbre/internal/table"
	"dbre/internal/value"
)

// build makes a table R(a,b,c) with the given integer rows (−1 means NULL).
func build(t *testing.T, rows [][3]int64) *table.Table {
	t.Helper()
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
		{Name: "c", Type: value.KindInt},
	})
	tab := table.New(s)
	for _, r := range rows {
		row := make(table.Row, 3)
		for i, v := range r {
			if v == -1 {
				row[i] = value.Null
			} else {
				row[i] = value.NewInt(v)
			}
		}
		tab.MustInsert(row)
	}
	return tab
}

func TestCheckHolds(t *testing.T) {
	tab := build(t, [][3]int64{{1, 10, 0}, {1, 10, 1}, {2, 20, 2}})
	s, err := Check(tab, []string{"a"}, "b")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds() || s.Rows != 3 {
		t.Errorf("support = %+v", s)
	}
	ok, err := Holds(tab, []string{"a"}, "b")
	if err != nil || !ok {
		t.Errorf("Holds = %v, %v", ok, err)
	}
}

func TestCheckViolations(t *testing.T) {
	// a=1 maps to b∈{10,10,30}: one violating tuple.
	tab := build(t, [][3]int64{{1, 10, 0}, {1, 10, 1}, {1, 30, 2}, {2, 20, 3}})
	s, err := Check(tab, []string{"a"}, "b")
	if err != nil {
		t.Fatal(err)
	}
	if s.Holds() || s.Violations != 1 || s.Rows != 4 {
		t.Errorf("support = %+v", s)
	}
}

func TestCheckNullHandling(t *testing.T) {
	// NULL LHS rows skipped; NULL RHS is a value.
	tab := build(t, [][3]int64{{-1, 10, 0}, {1, -1, 1}, {1, -1, 2}})
	s, err := Check(tab, []string{"a"}, "b")
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 2 || !s.Holds() {
		t.Errorf("support = %+v", s)
	}
	// Mixed NULL / value in RHS violates.
	tab2 := build(t, [][3]int64{{1, -1, 0}, {1, 10, 1}})
	s2, _ := Check(tab2, []string{"a"}, "b")
	if s2.Holds() {
		t.Error("NULL vs 10 not a violation")
	}
}

func TestCheckComposite(t *testing.T) {
	tab := build(t, [][3]int64{{1, 10, 5}, {1, 20, 6}, {1, 10, 5}})
	s, err := Check(tab, []string{"a", "b"}, "c")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds() {
		t.Errorf("composite FD should hold: %+v", s)
	}
}

func TestCheckErrors(t *testing.T) {
	tab := build(t, nil)
	if _, err := Check(tab, []string{"zz"}, "b"); err == nil {
		t.Error("unknown LHS accepted")
	}
	if _, err := Check(tab, []string{"a"}, "zz"); err == nil {
		t.Error("unknown RHS accepted")
	}
}

func TestPartition(t *testing.T) {
	tab := build(t, [][3]int64{{1, 10, 0}, {1, 20, 1}, {2, 30, 2}, {2, 30, 3}, {3, 40, 4}})
	p, err := NewPartition(tab, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	// Stripped: {0,1} and {2,3}; singleton {4} dropped.
	if len(p.Groups) != 2 || p.Error() != 2 {
		t.Errorf("partition = %+v (err %d)", p.Groups, p.Error())
	}
	pb, err := p.Refine(tab, "b")
	if err != nil {
		t.Fatal(err)
	}
	// (a,b): {2,3} stays; {0,1} splits into singletons.
	if len(pb.Groups) != 1 || pb.Error() != 1 {
		t.Errorf("refined = %+v", pb.Groups)
	}
	// a → c fails (rows 0,1 differ on c); a,b → c? (2,30)->{2,3} c=2,3 differ.
	pc, _ := p.Refine(tab, "c")
	if RefinesTo(p, pc) {
		t.Error("a → c should fail")
	}
	// Against Check for consistency.
	holds, _ := Holds(tab, []string{"a"}, "c")
	if holds {
		t.Error("Check disagrees with partition result")
	}
	if _, err := p.Refine(tab, "zz"); err == nil {
		t.Error("unknown refine attr accepted")
	}
	if _, err := NewPartition(tab, []string{"zz"}); err == nil {
		t.Error("unknown partition attr accepted")
	}
}

func TestDiscoverRHSBasics(t *testing.T) {
	// R(a,b,c), key {c}: candidate a with T = {b}; a → b holds.
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
		{Name: "c", Type: value.KindInt},
	}, relation.NewAttrSet("c"))
	db := table.NewDatabase(relation.MustCatalog(s))
	tab := db.MustTable("R")
	tab.MustInsert(table.Row{value.NewInt(1), value.NewInt(10), value.NewInt(100)})
	tab.MustInsert(table.Row{value.NewInt(1), value.NewInt(10), value.NewInt(101)})
	tab.MustInsert(table.Row{value.NewInt(2), value.NewInt(20), value.NewInt(102)})

	res, err := DiscoverRHS(db, []relation.Ref{relation.NewRef("R", "a")}, nil, expert.Deny{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) != 1 || res.FDs[0].String() != "R: a -> b" {
		t.Fatalf("FDs = %v", res.FDs)
	}
	if len(res.Hidden) != 0 {
		t.Errorf("H = %v", res.Hidden)
	}
	if res.ExtensionChecks != 1 {
		t.Errorf("checks = %d", res.ExtensionChecks)
	}
	if len(res.Traces) != 1 || res.Traces[0].Outcome != "fd" {
		t.Errorf("traces = %v", res.Traces)
	}
}

func TestDiscoverRHSNotNullPruning(t *testing.T) {
	// Candidate a (nullable): NOT NULL attribute nn must leave T.
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
		{Name: "nn", Type: value.KindInt, NotNull: true},
		{Name: "k", Type: value.KindInt},
	}, relation.NewAttrSet("k"))
	db := table.NewDatabase(relation.MustCatalog(s))
	db.MustTable("R").MustInsert(table.Row{value.NewInt(1), value.NewInt(1), value.NewInt(1), value.NewInt(1)})
	res, err := DiscoverRHS(db, []relation.Ref{relation.NewRef("R", "a")}, nil, expert.Deny{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Traces[0].Pruned.Equal(relation.NewAttrSet("b")) {
		t.Errorf("T = %v, want {b}", res.Traces[0].Pruned)
	}
	// A not-null candidate keeps not-null attributes in T.
	s2 := relation.MustSchema("R2", []relation.Attribute{
		{Name: "a", Type: value.KindInt, NotNull: true},
		{Name: "b", Type: value.KindInt},
		{Name: "nn", Type: value.KindInt, NotNull: true},
		{Name: "k", Type: value.KindInt},
	}, relation.NewAttrSet("k"))
	db2 := table.NewDatabase(relation.MustCatalog(s2))
	db2.MustTable("R2").MustInsert(table.Row{value.NewInt(1), value.NewInt(1), value.NewInt(1), value.NewInt(1)})
	res2, err := DiscoverRHS(db2, []relation.Ref{relation.NewRef("R2", "a")}, nil, expert.Deny{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Traces[0].Pruned.Equal(relation.NewAttrSet("b", "nn")) {
		t.Errorf("T = %v, want {b, nn}", res2.Traces[0].Pruned)
	}
}

func TestDiscoverRHSHiddenObject(t *testing.T) {
	// Candidate with empty accepted RHS: expert decides.
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	})
	db := table.NewDatabase(relation.MustCatalog(s))
	tab := db.MustTable("R")
	tab.MustInsert(table.Row{value.NewInt(1), value.NewInt(10)})
	tab.MustInsert(table.Row{value.NewInt(1), value.NewInt(20)})

	ref := relation.NewRef("R", "a")
	sc := expert.NewScripted()
	sc.Hidden[ref.Key()] = true
	res, err := DiscoverRHS(db, []relation.Ref{ref}, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hidden) != 1 || !res.Hidden[0].Equal(ref) {
		t.Errorf("H = %v", res.Hidden)
	}
	if res.Traces[0].Outcome != "hidden-object" {
		t.Errorf("trace = %v", res.Traces[0])
	}
	// Refusing keeps it out.
	res2, _ := DiscoverRHS(db, []relation.Ref{ref}, nil, expert.Deny{})
	if len(res2.Hidden) != 0 || res2.Traces[0].Outcome != "given-up" {
		t.Errorf("H = %v, trace = %v", res2.Hidden, res2.Traces[0])
	}
}

func TestDiscoverRHSSeededHiddenResolved(t *testing.T) {
	// A seed of H whose RHS turns out non-empty moves into F.
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	})
	db := table.NewDatabase(relation.MustCatalog(s))
	db.MustTable("R").MustInsert(table.Row{value.NewInt(1), value.NewInt(10)})
	ref := relation.NewRef("R", "a")
	res, err := DiscoverRHS(db, nil, []relation.Ref{ref}, expert.Deny{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) != 1 || len(res.Hidden) != 0 {
		t.Errorf("FDs = %v, H = %v", res.FDs, res.Hidden)
	}
	// A seed whose RHS stays empty survives in H.
	db2 := table.NewDatabase(relation.MustCatalog(s.Clone()))
	db2.MustTable("R").MustInsert(table.Row{value.NewInt(1), value.NewInt(10)})
	db2.MustTable("R").MustInsert(table.Row{value.NewInt(1), value.NewInt(20)})
	res2, err := DiscoverRHS(db2, nil, []relation.Ref{ref}, expert.Deny{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Hidden) != 1 || res2.Traces[0].Outcome != "stays-hidden" {
		t.Errorf("H = %v, trace = %v", res2.Hidden, res2.Traces)
	}
}

func TestDiscoverRHSEnforce(t *testing.T) {
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	})
	db := table.NewDatabase(relation.MustCatalog(s))
	tab := db.MustTable("R")
	for i := 0; i < 99; i++ {
		tab.MustInsert(table.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 7))})
	}
	tab.MustInsert(table.Row{value.NewInt(0), value.NewInt(99)}) // one dirty tuple
	auto := expert.NewAuto()
	auto.MaxViolationRate = 0.05
	ref := relation.NewRef("R", "a")
	res, err := DiscoverRHS(db, []relation.Ref{ref}, nil, auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) != 1 {
		t.Fatalf("FDs = %v", res.FDs)
	}
	if !res.Traces[0].Enforced.Contains("b") {
		t.Errorf("trace = %+v", res.Traces[0])
	}
}

func TestDiscoverRHSValidationRejected(t *testing.T) {
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	})
	db := table.NewDatabase(relation.MustCatalog(s))
	db.MustTable("R").MustInsert(table.Row{value.NewInt(1), value.NewInt(10)})
	sc := expert.NewScripted()
	fd := deps.NewFD("R", relation.NewAttrSet("a"), relation.NewAttrSet("b"))
	sc.AcceptFD[fd.String()] = false
	res, err := DiscoverRHS(db, []relation.Ref{relation.NewRef("R", "a")}, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) != 0 || res.Traces[0].Outcome != "fd-rejected" {
		t.Errorf("FDs = %v, trace = %v", res.FDs, res.Traces[0])
	}
}

func TestDiscoverRHSUnknownRelation(t *testing.T) {
	db := table.NewDatabase(relation.MustCatalog())
	if _, err := DiscoverRHS(db, []relation.Ref{relation.NewRef("Ghost", "x")}, nil, nil); err == nil {
		t.Error("unknown relation accepted")
	}
}

// TestE5_PaperFDs reproduces the Section 6.2.2 result: F and the final H
// (experiment E5). LHS and H seeds are the paper's Section 6.2.1 sets.
func TestE5_PaperFDs(t *testing.T) {
	db := paperex.Database()
	lhs := []relation.Ref{
		relation.NewRef("HEmployee", "no"),
		relation.NewRef("Department", "emp"),
		relation.NewRef("Assignment", "emp"),
		relation.NewRef("Assignment", "proj"),
		relation.NewRef("Department", "proj"),
	}
	hidden := []relation.Ref{relation.NewRef("Assignment", "dep")}
	res, err := DiscoverRHS(db, lhs, hidden, paperex.Oracle())
	if err != nil {
		t.Fatal(err)
	}
	var fds []string
	for _, f := range res.FDs {
		fds = append(fds, f.String())
	}
	wantF := paperex.ExpectedFDs()
	if strings.Join(fds, "|") != strings.Join(wantF, "|") {
		t.Errorf("F = %v, want %v", fds, wantF)
	}
	var hs []string
	for _, h := range res.Hidden {
		hs = append(hs, h.String())
	}
	wantH := paperex.ExpectedHFinal()
	if strings.Join(hs, "|") != strings.Join(wantH, "|") {
		t.Errorf("H = %v, want %v", hs, wantH)
	}
	// The paper walks Department.emp's pruning: T = {skill, proj}.
	for _, tr := range res.Traces {
		if tr.Candidate.Equal(relation.NewRef("Department", "emp")) {
			if !tr.Pruned.Equal(relation.NewAttrSet("proj", "skill")) {
				t.Errorf("Department.emp T = %v", tr.Pruned)
			}
		}
		if tr.Candidate.Equal(relation.NewRef("HEmployee", "no")) {
			if !tr.Pruned.Equal(relation.NewAttrSet("salary")) {
				t.Errorf("HEmployee.no T = %v", tr.Pruned)
			}
			if tr.Outcome != "hidden-object" {
				t.Errorf("HEmployee.no outcome = %s", tr.Outcome)
			}
		}
	}
}

func TestBaselineSmall(t *testing.T) {
	// R(a,b,c): a → b planted; c free.
	tab := build(t, [][3]int64{
		{1, 10, 1}, {1, 10, 2}, {2, 20, 1}, {2, 20, 3}, {3, 20, 2},
	})
	res, err := DiscoverBaseline(tab, DefaultBaselineOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := deps.NewFD("R", relation.NewAttrSet("a"), relation.NewAttrSet("b"))
	found := false
	for _, f := range res.FDs {
		if f.Equal(want) {
			found = true
		}
		if f.LHS.Contains("a") && f.LHS.Len() > 1 && f.RHS.Contains("b") {
			t.Errorf("non-minimal FD kept: %v", f)
		}
	}
	if !found {
		t.Errorf("missing %v in %v", want, res.FDs)
	}
	if res.CandidatesTested == 0 {
		t.Error("nothing tested")
	}
}

func TestBaselineMinimalityPruning(t *testing.T) {
	tab := build(t, [][3]int64{{1, 10, 5}, {2, 20, 6}})
	// Tiny table: a → b, a → c, b → ... many hold; supersets pruned.
	res, err := DiscoverBaseline(tab, BaselineOptions{MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidatesPruned == 0 {
		t.Error("no pruning happened")
	}
	for _, f := range res.FDs {
		if f.LHS.Len() != 1 {
			t.Errorf("non-minimal survived: %v", f)
		}
	}
}

func TestBaselineSkipKeys(t *testing.T) {
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "k", Type: value.KindInt},
		{Name: "a", Type: value.KindInt},
	}, relation.NewAttrSet("k"))
	tab := table.New(s)
	tab.MustInsert(table.Row{value.NewInt(1), value.NewInt(1)})
	tab.MustInsert(table.Row{value.NewInt(2), value.NewInt(1)})
	res, err := DiscoverBaseline(tab, BaselineOptions{MaxLHS: 1, SkipKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.FDs {
		if f.LHS.Contains("k") {
			t.Errorf("key attribute in LHS: %v", f)
		}
	}
}

func TestBaselineAgreesWithCheck(t *testing.T) {
	tab := build(t, [][3]int64{
		{1, 10, 7}, {1, 10, 8}, {2, 10, 7}, {3, 30, 9}, {3, 30, 9},
	})
	res, err := DiscoverBaseline(tab, BaselineOptions{MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.FDs {
		for _, b := range f.RHS.Names() {
			// NULL-free data: partition semantics and Check agree.
			ok, err := Holds(tab, f.LHS.Names(), b)
			if err != nil || !ok {
				t.Errorf("baseline FD %v refuted by Check (%v)", f, err)
			}
		}
	}
}

func TestDiscoverBaselineAll(t *testing.T) {
	db := table.NewDatabase(relation.MustCatalog(
		relation.MustSchema("A", []relation.Attribute{
			{Name: "x", Type: value.KindInt}, {Name: "y", Type: value.KindInt},
		}),
		relation.MustSchema("B", []relation.Attribute{
			{Name: "u", Type: value.KindInt}, {Name: "v", Type: value.KindInt},
		}),
	))
	db.MustTable("A").MustInsert(table.Row{value.NewInt(1), value.NewInt(2)})
	db.MustTable("B").MustInsert(table.Row{value.NewInt(1), value.NewInt(2)})
	res, err := DiscoverBaselineAll(db, DefaultBaselineOptions())
	if err != nil {
		t.Fatal(err)
	}
	rels := map[string]bool{}
	for _, f := range res.FDs {
		rels[f.Rel] = true
	}
	if !rels["A"] || !rels["B"] {
		t.Errorf("FDs = %v", res.FDs)
	}
}

// TestCheckNaiveAgreesWithCheck: the quadratic reference implementation
// agrees with the hash-grouping check on holds/fails across data shapes.
func TestCheckNaiveAgreesWithCheck(t *testing.T) {
	cases := [][][3]int64{
		{{1, 10, 0}, {1, 10, 1}, {2, 20, 2}}, // holds
		{{1, 10, 0}, {1, 30, 1}},             // fails
		{{-1, 10, 0}, {1, 10, 1}},            // NULL LHS skipped
		{{1, -1, 0}, {1, -1, 1}},             // NULL RHS equal
		{{1, -1, 0}, {1, 10, 1}},             // NULL vs value fails
		{},                                   // empty
	}
	for i, rows := range cases {
		tab := build(t, rows)
		a, err := Check(tab, []string{"a"}, "b")
		if err != nil {
			t.Fatal(err)
		}
		b, err := CheckNaive(tab, []string{"a"}, "b")
		if err != nil {
			t.Fatal(err)
		}
		if a.Holds() != b.Holds() || a.Rows != b.Rows {
			t.Errorf("case %d: Check=%+v CheckNaive=%+v", i, a, b)
		}
	}
	// Errors propagate.
	tab := build(t, nil)
	if _, err := CheckNaive(tab, []string{"zz"}, "b"); err == nil {
		t.Error("unknown LHS accepted")
	}
	if _, err := CheckNaive(tab, []string{"a"}, "zz"); err == nil {
		t.Error("unknown RHS accepted")
	}
}

func TestCandidateTraceString(t *testing.T) {
	tr := CandidateTrace{
		Candidate: relation.NewRef("R", "a"),
		Pruned:    relation.NewAttrSet("b"),
		Accepted:  relation.NewAttrSet("b"),
		Outcome:   "fd",
	}
	if got := tr.String(); got != "R.a: T=b B=b -> fd" {
		t.Errorf("String = %q", got)
	}
}

// Targeted FD re-validation after a batch append. A new tuple can only
// *break* a functional dependency, never repair one that held — adding
// rows never removes a violating pair — so a previously-clean A → b
// needs only its delta rows checked: each appended row either lands in
// an existing group of A (then its b-value must match that group's
// established value, read off the group representative) or founds a new
// group (trivially clean). Previously-violated checks replay their
// refutation outright when the enforcement policy ignores support —
// violations are monotone non-decreasing under appends (each appended
// tuple raises its group's majority count by at most one while raising
// the non-NULL row count by exactly one), so a support that carries
// violations keeps carrying them — and are recomputed in full otherwise,
// because their exact violation counts — which a support-sensitive
// enforcement policy reads — change in ways the delta alone cannot
// reproduce.
package fd

import (
	"context"

	"dbre/internal/expert"
	"dbre/internal/obs"
	"dbre/internal/relation"
	"dbre/internal/stats"
	"dbre/internal/table"
)

// SupportMap is the per-(candidate-key, attribute) support table of one
// RHS-Discovery run — the warm state a delta re-validation starts from.
type SupportMap map[[2]string]expert.FDSupport

// DeltaStats summarizes how a delta re-validation classified its
// extension checks.
type DeltaStats struct {
	// Reused counts checks whose relation did not change: the previous
	// support is still exact and no kernel ran.
	Reused int
	// DeltaChecked counts previously-clean checks proven still clean by
	// scanning only the appended rows.
	DeltaChecked int
	// Refuted counts previously-violated checks whose refutation was
	// replayed without any kernel: appends can only add violations, so
	// under a support-insensitive enforcement policy
	// (expert.IsSupportInsensitive) the decision cannot change. The
	// carried support is the stale one — a certain lower bound, never
	// read by such a policy.
	Refuted int
	// Escalated counts checks recomputed by the full kernel: the
	// previous support already carried violations under a
	// support-sensitive enforcement policy, no previous support exists
	// (new relation or attribute), or a delta check found a fresh
	// violation.
	Escalated int
	// Broken counts the subset of Escalated where a previously-clean
	// check was dirtied by the delta — the re-escalations proper, whose
	// decisions go back through the expert's enforcement policy.
	Broken int
}

// CheckDelta proves a previously-clean FD lhs → rhs still clean by
// checking only rows [baseRows, len) against the group representatives,
// or reports dirty=true on the first fresh violation. The returned
// support is exact only when dirty=false: Rows is the non-NULL-lhs row
// count over the full grown extension and Violations is 0, which is
// bit-identical to what the full kernels return for a clean FD.
func CheckDelta(cache *stats.Cache, rel string, lhs []string, rhs string, baseRows int) (support expert.FDSupport, dirty bool, err error) {
	gx, _, nonNull, err := cache.GroupVector(rel, lhs)
	if err != nil {
		return expert.FDSupport{}, false, err
	}
	ga, _, _, err := cache.GroupVector(rel, []string{rhs})
	if err != nil {
		return expert.FDSupport{}, false, err
	}
	reps, err := cache.GroupReps(rel, lhs)
	if err != nil {
		return expert.FDSupport{}, false, err
	}
	// Old groups have old representatives (their b-value is the group's
	// established one — the FD held over the prefix); delta-founded
	// groups have their first delta row as representative, so intra-delta
	// splits are caught too. NULL b is one regular value (code -1), the
	// same convention as every full kernel.
	for i := baseRows; i < len(gx); i++ {
		g := gx[i]
		if g < 0 {
			continue
		}
		if ga[i] != ga[reps[g]] {
			return expert.FDSupport{}, true, nil
		}
	}
	return expert.FDSupport{Rows: nonNull, Violations: 0}, false, nil
}

// DiscoverRHSDeltaCtx replays RHS-Discovery over a grown database using
// the previous run's support table: checks over unchanged relations are
// reused outright, previously-clean checks are verified against the
// delta only, previously-violated checks replay their refutation for
// free when the oracle's enforcement policy is support-insensitive
// (appends only add violations), and everything else — fresh
// violations, violated checks under a support-sensitive policy,
// relations or attributes without history — escalates to the full
// kernel. The decision loop then runs unchanged over the
// refreshed supports, so results (FDs, hidden set, traces, expert
// consultation order) are bit-identical to a cold DiscoverRHSOptsCtx
// run on the same state. baseRows maps each relation to its row count
// at the previous run (absent means the relation is new). Requires
// o.Stats; o.Sketch/o.Legacy are ignored on the delta path (escalations
// use the dense exact kernel, whose supports all variants share).
func DiscoverRHSDeltaCtx(ctx context.Context, db *table.Database, lhs, hidden []relation.Ref, oracle expert.Oracle, o Opts, prevSupports SupportMap, baseRows map[string]int) (*Result, SupportMap, DeltaStats, error) {
	var ds DeltaStats
	if o.Stats == nil {
		res, sup, err := DiscoverRHSSupportsCtx(ctx, db, lhs, hidden, oracle, o)
		return res, sup, ds, err
	}
	tr := obs.FromContext(ctx)
	_, psp := obs.StartSpan(ctx, "plan-delta")
	plan, err := planRHS(db, lhs, hidden)
	psp.End()
	if err != nil {
		return nil, nil, ds, err
	}

	type chk struct {
		cand int
		attr string
	}
	var checks []chk
	for i := range plan.candidates {
		for _, b := range plan.pruned[i].Names() {
			checks = append(checks, chk{i, b})
		}
	}
	keyOf := func(c chk) [2]string {
		return [2]string{plan.candidates[c.cand].Key(), c.attr}
	}
	supports := make(SupportMap, len(checks))
	results := make([]expert.FDSupport, len(checks))
	errs := make([]error, len(checks))
	kinds := make([]int8, len(checks)) // 0 reused, 1 delta-clean, 2 escalated, 3 broken, 4 refuted-replay
	insensitive := expert.IsSupportInsensitive(oracle)
	_, ksp := obs.StartSpan(ctx, "check-delta")
	stats.ForEach(len(checks), o.Workers, func(i int) {
		cand := plan.candidates[checks[i].cand]
		base, known := baseRows[cand.Rel]
		prev, have := prevSupports[keyOf(checks[i])]
		tab := db.MustTable(cand.Rel)
		if have && known && tab.Len() == base {
			results[i], kinds[i] = prev, 0
			return
		}
		// A previously-violated check stays violated under appends, so a
		// support-insensitive enforcement policy replays its refusal
		// without touching the extension at all. The stale support is
		// carried forward as a certain lower bound.
		if have && known && prev.Violations > 0 && base <= tab.Len() && insensitive {
			results[i], kinds[i] = prev, 4
			return
		}
		if have && known && prev.Violations == 0 && base <= tab.Len() &&
			tab.Engine() == table.EngineColumnar {
			sup, dirty, err := CheckDelta(o.Stats, cand.Rel, cand.Attrs.Names(), checks[i].attr, base)
			if err != nil {
				errs[i] = err
				return
			}
			if !dirty {
				results[i], kinds[i] = sup, 1
				return
			}
			results[i], errs[i] = CheckStats(o.Stats, cand.Rel, cand.Attrs.Names(), checks[i].attr)
			kinds[i] = 3
			return
		}
		results[i], errs[i] = CheckStats(o.Stats, cand.Rel, cand.Attrs.Names(), checks[i].attr)
		kinds[i] = 2
	})
	for i, err := range errs {
		if err != nil {
			ksp.End()
			return nil, nil, ds, err
		}
		supports[keyOf(checks[i])] = results[i]
		switch kinds[i] {
		case 0:
			ds.Reused++
		case 1:
			ds.DeltaChecked++
		case 3:
			ds.Escalated++
			ds.Broken++
		case 4:
			ds.Refuted++
		default:
			ds.Escalated++
		}
	}
	ksp.SetInt("reused", int64(ds.Reused))
	ksp.SetInt("delta-checked", int64(ds.DeltaChecked))
	ksp.SetInt("refuted", int64(ds.Refuted))
	ksp.SetInt("escalated", int64(ds.Escalated))
	ksp.End()
	tr.Add(obs.CtrFDChecks, int64(ds.DeltaChecked+ds.Escalated))
	tr.Add(obs.CtrReescalations, int64(ds.Broken))

	lookup := func(cand relation.Ref, b string) (expert.FDSupport, error) {
		return supports[[2]string{cand.Key(), b}], nil
	}
	_, dsp := obs.StartSpan(ctx, "decide-delta")
	res, err := decideRHSCtx(ctx, db, plan, oracle, lookup)
	dsp.End()
	if err != nil {
		return nil, nil, ds, err
	}
	return res, supports, ds, nil
}

// Package fd implements the functional-dependency side of the method: the
// extension checks behind RHS-Discovery (Section 6.2.2), the RHS-Discovery
// algorithm itself, and an exhaustive TANE-style discovery baseline (the
// data-only alternative the paper cites as Mannila & Räihä [12]).
package fd

import (
	"fmt"
	"strings"

	"dbre/internal/expert"
	"dbre/internal/stats"
	"dbre/internal/table"
)

// Check tests the functional dependency lhs → rhs on a table and reports
// its support: the number of tuples inspected and the number of violating
// tuples (tuples outside the majority right-hand-side value of their
// left-hand-side group). Tuples with a NULL in the left-hand side are
// skipped, matching how the elicitation treats missing identifiers; a NULL
// right-hand side counts as a regular value.
func Check(tab *table.Table, lhs []string, rhs string) (expert.FDSupport, error) {
	cols := make([]int, len(lhs))
	for i, a := range lhs {
		c, ok := tab.ColIndex(a)
		if !ok {
			return expert.FDSupport{}, fmt.Errorf("fd: relation %s has no attribute %q", tab.Schema().Name, a)
		}
		cols[i] = c
	}
	rcol, ok := tab.ColIndex(rhs)
	if !ok {
		return expert.FDSupport{}, fmt.Errorf("fd: relation %s has no attribute %q", tab.Schema().Name, rhs)
	}
	// groups: lhs key → rhs value counts.
	groups := make(map[string]map[string]int)
	rows := 0
	var buf table.Row
	for i := 0; i < tab.Len(); i++ {
		row := tab.ReadRow(i, buf)
		buf = row
		var key strings.Builder
		hasNull := false
		for _, c := range cols {
			if row[c].IsNull() {
				hasNull = true
				break
			}
			key.WriteString(row[c].Key())
			key.WriteByte(0x1f)
		}
		if hasNull {
			continue
		}
		rows++
		k := key.String()
		if groups[k] == nil {
			groups[k] = make(map[string]int)
		}
		groups[k][row[rcol].Key()]++
	}
	violations := 0
	for _, counts := range groups {
		total, max := 0, 0
		for _, n := range counts {
			total += n
			if n > max {
				max = n
			}
		}
		violations += total - max
	}
	return expert.FDSupport{Rows: rows, Violations: violations}, nil
}

// checkDenseSlack and checkDenseFloor bound the joint-count table the
// dense CheckStats kernel will allocate: nLHS × (nRHS+1) slots are
// admitted up to checkDenseSlack × rows (the kernel reads every row
// anyway, so scratch proportional to the row count is already paid for)
// plus a floor that keeps small relations always dense.
const (
	checkDenseSlack = 4
	checkDenseFloor = 1 << 16
)

// CheckStats is Check through the shared column-statistics cache,
// computed by a dense joint-counting kernel. The cached lhs projection
// is built (or reused) once and serves every right-hand-side candidate
// tested against the same left-hand side — exactly RHS-Discovery's
// access pattern, which probes one A against every surviving b — and
// the rhs column's own projection reduces the per-group majority count
// to pure group-id arithmetic over two int32 vectors:
//
//	violations = nonNull(lhs) − Σ_g max_r counts[g][r]
//
// where counts is the joint (lhs group, rhs group) contingency table,
// laid out flat with stride nRHS+1 so a NULL right-hand side (group id
// −1, one regular value in Check's semantics) lands branchlessly in
// slot 0. Scratch comes from the cache's arena, so warmed checks run
// allocation-free. When the flat table would exceed the budget — sparse
// products on very wide group counts — the grouped legacy kernel takes
// over; supports are identical to Check's on every path: the groups are
// the same groups, the majority count the same count.
//
// The support itself is a pure function of the dependency at the
// cache's commit point, so it is memoized through stats.SupportMemo: a
// repeat of the same check — in particular a warm job delegating to the
// resident pool's shared cache — skips the joint pass entirely and the
// kernel runs once per commit point across every consumer.
func CheckStats(cache *stats.Cache, rel string, lhs []string, rhs string) (expert.FDSupport, error) {
	rows, violations, err := cache.SupportMemo(rel, lhs, rhs, func() (int, int, error) {
		s, err := checkStatsKernel(cache, rel, lhs, rhs)
		return s.Rows, s.Violations, err
	})
	return expert.FDSupport{Rows: rows, Violations: violations}, err
}

// checkStatsKernel is the dense joint-counting pass behind CheckStats,
// falling back to the grouped legacy kernel on sparse products.
func checkStatsKernel(cache *stats.Cache, rel string, lhs []string, rhs string) (expert.FDSupport, error) {
	lg, nLHS, nonNull, err := cache.GroupVector(rel, lhs)
	if err != nil {
		return expert.FDSupport{}, err
	}
	rg, nRHS, _, err := cache.GroupVector(rel, []string{rhs})
	if err != nil {
		return expert.FDSupport{}, err
	}
	stride := nRHS + 1
	product := int64(nLHS) * int64(stride)
	if product > int64(checkDenseSlack*len(lg)+checkDenseFloor) {
		return CheckStatsLegacy(cache, rel, lhs, rhs)
	}
	counts := cache.AcquireInts(int(product))
	maxPer := cache.AcquireInts(nLHS)
	for i, g := range lg {
		if g < 0 {
			continue // NULL in the left-hand side: tuple skipped
		}
		k := int(g)*stride + int(rg[i]) + 1
		n := counts[k] + 1
		counts[k] = n
		if n > maxPer[g] {
			maxPer[g] = n
		}
	}
	kept := 0
	for _, m := range maxPer {
		kept += int(m)
	}
	cache.ReleaseInts(counts)
	cache.ReleaseInts(maxPer)
	return expert.FDSupport{Rows: nonNull, Violations: nonNull - kept}, nil
}

// CheckStatsSketch is CheckStats behind the approximate triage tier. Two
// fast paths may settle a check without the joint counting pass, and
// both are certain, never probabilistic:
//
//   - Superkey: if ‖r[X]‖ equals the number of NULL-free-X tuples, every
//     group is a singleton and the dependency holds with exactly zero
//     violations — the rhs projection and the O(rows) joint pass are
//     skipped and the returned support is bit-identical to CheckStats's.
//     (‖r[X]‖ is exact and O(1) amortized here: the lhs group vector is
//     built once per candidate and shared across all its rhs checks, so
//     on the columnar engine the exact count is as cheap as its sketch
//     estimate — the tier uses it directly.)
//   - Sample refutation (only when sampleRefute): two rows of the
//     deterministic bottom-k row sample in the same lhs group with
//     different rhs codes witness the dependency as refuted. The
//     returned violation count is a certain lower bound, not the exact
//     count, so callers may enable this path only when the oracle's
//     EnforceFD is support-insensitive (expert.IsSupportInsensitive) —
//     Holds() and every accepted result are then identical.
//
// Neither path fires -> pruned is false and the exact kernel runs.
func CheckStatsSketch(cache *stats.Cache, rel string, lhs []string, rhs string, sampleRefute bool) (support expert.FDSupport, pruned bool, err error) {
	lg, nLHS, nonNull, err := cache.GroupVector(rel, lhs)
	if err != nil {
		return expert.FDSupport{}, false, err
	}
	if nLHS == nonNull {
		return expert.FDSupport{Rows: nonNull, Violations: 0}, true, nil
	}
	if sampleRefute {
		ts, err := cache.Sketches(rel)
		if err != nil {
			return expert.FDSupport{}, false, err
		}
		if ts != nil {
			rg, _, _, err := cache.GroupVector(rel, []string{rhs})
			if err != nil {
				return expert.FDSupport{}, false, err
			}
			// seen maps lhs group -> first rhs code observed in the
			// sample; -1 rhs codes (NULL) are one regular value, exactly
			// Check's semantics. A group with two distinct codes has at
			// least one exact violation, so counting each disagreeing
			// group once (flagged with the impossible code -2) yields a
			// certain lower bound on the exact violation count.
			seen := make(map[int32]int32)
			viol := 0
			for _, ri := range ts.SampleRows() {
				i := int(ri)
				if i >= len(lg) {
					continue // sample ahead of the cached projection
				}
				g := lg[i]
				if g < 0 {
					continue // NULL in the left-hand side: tuple skipped
				}
				if prev, ok := seen[g]; ok {
					if prev != -2 && prev != rg[i] {
						viol++
						seen[g] = -2
					}
				} else {
					seen[g] = rg[i]
				}
			}
			if viol > 0 {
				return expert.FDSupport{Rows: nonNull, Violations: viol}, true, nil
			}
		}
	}
	support, err = CheckStats(cache, rel, lhs, rhs)
	return support, false, err
}

// CheckStatsLegacy is the pre-overhaul grouped kernel: per-group
// majority counting over the materialized group slices, with a touched
// list resetting the shared count vector between groups. It remains the
// fallback for products too sparse to joint-count densely, the baseline
// leg of the B12 ablation (Opts.Legacy), and a differential reference
// for the dense kernel.
func CheckStatsLegacy(cache *stats.Cache, rel string, lhs []string, rhs string) (expert.FDSupport, error) {
	groups, err := cache.GroupSlices(rel, lhs)
	if err != nil {
		return expert.FDSupport{}, err
	}
	rg, nRHS, err := cache.RowGroups(rel, []string{rhs})
	if err != nil {
		return expert.FDSupport{}, err
	}
	// counts is indexed by rhs group id; the extra slot collects NULL
	// right-hand sides, which Check treats as one regular value.
	counts := make([]int32, nRHS+1)
	touched := make([]int32, 0, 16)
	rows, violations := 0, 0
	for _, g := range groups {
		rows += len(g)
		if len(g) == 1 {
			continue // a singleton group cannot violate
		}
		max := int32(0)
		for _, i := range g {
			rid := rg[i]
			if rid < 0 {
				rid = int32(nRHS)
			}
			n := counts[rid] + 1
			counts[rid] = n
			if n == 1 {
				touched = append(touched, rid)
			}
			if n > max {
				max = n
			}
		}
		violations += len(g) - int(max)
		for _, rid := range touched {
			counts[rid] = 0
		}
		touched = touched[:0]
	}
	return expert.FDSupport{Rows: rows, Violations: violations}, nil
}

// CheckNaive tests lhs → rhs by comparing every pair of tuples — the
// textbook O(n²) definition. It exists as the ablation baseline for the
// hash-grouping Check (benchmark B3) and for differential testing.
func CheckNaive(tab *table.Table, lhs []string, rhs string) (expert.FDSupport, error) {
	cols := make([]int, len(lhs))
	for i, a := range lhs {
		c, ok := tab.ColIndex(a)
		if !ok {
			return expert.FDSupport{}, fmt.Errorf("fd: relation %s has no attribute %q", tab.Schema().Name, a)
		}
		cols[i] = c
	}
	rcol, ok := tab.ColIndex(rhs)
	if !ok {
		return expert.FDSupport{}, fmt.Errorf("fd: relation %s has no attribute %q", tab.Schema().Name, rhs)
	}
	sameLHS := func(a, b table.Row) bool {
		for _, c := range cols {
			if a[c].IsNull() || b[c].IsNull() || !a[c].Equal(b[c]) {
				return false
			}
		}
		return true
	}
	rows := 0
	violating := make(map[int]bool)
	n := tab.Len()
	// Materialize every tuple once up front: the pairwise loop reads each
	// row n times, which on the columnar engine would decode it n times.
	mat := make([]table.Row, n)
	for i := 0; i < n; i++ {
		mat[i] = tab.Row(i)
	}
	for i := 0; i < n; i++ {
		ri := mat[i]
		nullLHS := false
		for _, c := range cols {
			if ri[c].IsNull() {
				nullLHS = true
			}
		}
		if nullLHS {
			continue
		}
		rows++
		for j := i + 1; j < n; j++ {
			rj := mat[j]
			if sameLHS(ri, rj) && !ri[rcol].Equal(rj[rcol]) {
				// Blame the later tuple, approximating Check's
				// majority-based count.
				violating[j] = true
			}
		}
	}
	return expert.FDSupport{Rows: rows, Violations: len(violating)}, nil
}

// Holds reports whether lhs → rhs is satisfied by the extension.
func Holds(tab *table.Table, lhs []string, rhs string) (bool, error) {
	s, err := Check(tab, lhs, rhs)
	if err != nil {
		return false, err
	}
	return s.Holds(), nil
}

// Partition is a stripped partition: the row-index groups of size ≥ 2
// induced by grouping on some attribute set. Singleton groups carry no
// refutation power and are dropped (TANE's representation).
type Partition struct {
	Groups [][]int
	rows   int
}

// NewPartition groups the table's rows by the given attributes; NULL is a
// regular value here (data-mining semantics).
func NewPartition(tab *table.Table, attrs []string) (*Partition, error) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		c, ok := tab.ColIndex(a)
		if !ok {
			return nil, fmt.Errorf("fd: relation %s has no attribute %q", tab.Schema().Name, a)
		}
		cols[i] = c
	}
	groups := make(map[string][]int)
	var buf table.Row
	for i := 0; i < tab.Len(); i++ {
		row := tab.ReadRow(i, buf)
		buf = row
		var key strings.Builder
		for _, c := range cols {
			key.WriteString(row[c].Key())
			key.WriteByte(0x1f)
		}
		k := key.String()
		groups[k] = append(groups[k], i)
	}
	p := &Partition{rows: tab.Len()}
	for _, g := range groups {
		if len(g) >= 2 {
			p.Groups = append(p.Groups, g)
		}
	}
	return p, nil
}

// Error is TANE's e(X): the minimum number of rows to remove so that X
// becomes a superkey — Σ(|group| - 1) over stripped groups.
func (p *Partition) Error() int {
	e := 0
	for _, g := range p.Groups {
		e += len(g) - 1
	}
	return e
}

// Refine intersects the partition with the grouping of a single column:
// π_{X ∪ {a}} from π_X, the incremental step of the level-wise search.
func (p *Partition) Refine(tab *table.Table, attr string) (*Partition, error) {
	col, ok := tab.ColIndex(attr)
	if !ok {
		return nil, fmt.Errorf("fd: relation %s has no attribute %q", tab.Schema().Name, attr)
	}
	out := &Partition{rows: p.rows}
	sub := make(map[string][]int)
	for _, g := range p.Groups {
		for k := range sub {
			delete(sub, k)
		}
		for _, i := range g {
			k := tab.Value(i, col).Key()
			sub[k] = append(sub[k], i)
		}
		for _, s := range sub {
			if len(s) >= 2 {
				out.Groups = append(out.Groups, append([]int{}, s...))
			}
		}
	}
	return out, nil
}

// RefinesTo reports whether X → a holds given π_X and π_{X∪{a}}: the FD
// holds iff both partitions have the same error.
func RefinesTo(px, pxa *Partition) bool { return px.Error() == pxa.Error() }

package fd

import (
	"sort"

	"dbre/internal/deps"
	"dbre/internal/relation"
	"dbre/internal/stats"
	"dbre/internal/table"
)

// BaselineOptions configures the exhaustive level-wise FD discovery.
type BaselineOptions struct {
	// MaxLHS bounds the left-hand-side size searched (TANE levels).
	MaxLHS int
	// SkipKeys removes declared key attributes from left-hand-side
	// candidates: their dependencies are already known from K.
	SkipKeys bool
	// Workers fans DiscoverBaselineAll over a bounded worker pool, one
	// task per relation; ≤ 1 runs serially. Per-relation results are
	// aggregated in catalog order, so the output is identical.
	Workers int
}

// DefaultBaselineOptions searches up to two-attribute left-hand sides.
func DefaultBaselineOptions() BaselineOptions { return BaselineOptions{MaxLHS: 2} }

// BaselineResult is the output of the exhaustive discovery on one relation.
type BaselineResult struct {
	// FDs holds the minimal functional dependencies found (singleton
	// right-hand sides).
	FDs []deps.FD
	// CandidatesTested counts the X → a partition checks performed.
	CandidatesTested int
	// CandidatesPruned counts candidates skipped through the minimality
	// pruning rule.
	CandidatesPruned int
}

// DiscoverBaseline performs a level-wise, partition-based search for all
// minimal functional dependencies X → a with |X| ≤ MaxLHS on one relation —
// the data-only discovery à la TANE / Mannila & Räihä that needs no
// application programs. The benchmarks compare its candidate count with
// RHS-Discovery's handful of targeted checks.
func DiscoverBaseline(tab *table.Table, opts BaselineOptions) (*BaselineResult, error) {
	if opts.MaxLHS < 1 {
		opts.MaxLHS = 1
	}
	res := &BaselineResult{}
	schema := tab.Schema()

	var attrs []string
	keyAttrs := relation.AttrSet{}
	for _, u := range schema.Uniques {
		keyAttrs = keyAttrs.Union(u)
	}
	for _, a := range schema.Attrs {
		if opts.SkipKeys && keyAttrs.Contains(a.Name) {
			continue
		}
		attrs = append(attrs, a.Name)
	}
	sort.Strings(attrs)

	// Partitions are cached per attribute set, built by refinement from
	// the previous level.
	parts := make(map[string]*Partition)
	partition := func(set relation.AttrSet) (*Partition, error) {
		if p, ok := parts[set.Key()]; ok {
			return p, nil
		}
		// Refine from a one-smaller cached subset when possible.
		names := set.Names()
		if len(names) > 1 {
			smaller := set.Minus(relation.NewAttrSet(names[len(names)-1]))
			if p, ok := parts[smaller.Key()]; ok {
				ref, err := p.Refine(tab, names[len(names)-1])
				if err != nil {
					return nil, err
				}
				parts[set.Key()] = ref
				return ref, nil
			}
		}
		p, err := NewPartition(tab, names)
		if err != nil {
			return nil, err
		}
		parts[set.Key()] = p
		return p, nil
	}

	// minimalLHS[a] lists the minimal left-hand sides found so far for a.
	minimalLHS := make(map[string][]relation.AttrSet)
	hasSubsetLHS := func(a string, x relation.AttrSet) bool {
		for _, m := range minimalLHS[a] {
			if x.ContainsAll(m) {
				return true
			}
		}
		return false
	}

	for size := 1; size <= opts.MaxLHS && size < len(attrs); size++ {
		err := combos(len(attrs), size, func(pick []int) error {
			names := make([]string, size)
			for i, p := range pick {
				names[i] = attrs[p]
			}
			x := relation.NewAttrSet(names...)
			px, err := partition(x)
			if err != nil {
				return err
			}
			for _, a := range attrs {
				if x.Contains(a) {
					continue
				}
				if hasSubsetLHS(a, x) {
					res.CandidatesPruned++
					continue // a smaller LHS already determines a
				}
				res.CandidatesTested++
				pxa, err := partition(x.Add(a))
				if err != nil {
					return err
				}
				if RefinesTo(px, pxa) {
					res.FDs = append(res.FDs, deps.NewFD(schema.Name, x, relation.NewAttrSet(a)))
					minimalLHS[a] = append(minimalLHS[a], x)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	deps.SortFDs(res.FDs)
	return res, nil
}

// combos invokes fn for every size-k index combination of [0,n), stopping
// on error.
func combos(n, k int, fn func([]int) error) error {
	if k > n {
		return nil
	}
	pick := make([]int, k)
	var rec func(start, depth int) error
	rec = func(start, depth int) error {
		if depth == k {
			return fn(pick)
		}
		for i := start; i < n; i++ {
			pick[depth] = i
			if err := rec(i+1, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, 0)
}

// DiscoverBaselineAll runs the exhaustive discovery over every relation of
// the database and aggregates the counters. Relations are independent, so
// with opts.Workers > 1 they run on the shared worker kernel; aggregation
// stays in catalog order either way.
func DiscoverBaselineAll(db *table.Database, opts BaselineOptions) (*BaselineResult, error) {
	names := db.Catalog().Names()
	results := make([]*BaselineResult, len(names))
	errs := make([]error, len(names))
	stats.ForEach(len(names), opts.Workers, func(i int) {
		results[i], errs[i] = DiscoverBaseline(db.MustTable(names[i]), opts)
	})
	agg := &BaselineResult{}
	for i, r := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		agg.FDs = append(agg.FDs, r.FDs...)
		agg.CandidatesTested += r.CandidatesTested
		agg.CandidatesPruned += r.CandidatesPruned
	}
	deps.SortFDs(agg.FDs)
	return agg, nil
}

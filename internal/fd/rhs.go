package fd

import (
	"context"
	"fmt"

	"dbre/internal/deps"
	"dbre/internal/expert"
	"dbre/internal/obs"
	"dbre/internal/relation"
	"dbre/internal/stats"
	"dbre/internal/table"
)

// Opts configures the extension-checking phase of RHS-Discovery. The
// zero value reproduces the reference algorithm: direct scans, serial.
type Opts struct {
	// Stats routes the A → b checks through the shared column-statistics
	// cache, so the hashed projection index on each candidate left-hand
	// side is built once and reused by every right-hand-side probe.
	Stats *stats.Cache
	// Workers fans the checks over a bounded worker pool; ≤ 1 checks
	// serially, < 0 selects GOMAXPROCS.
	Workers int
	// Legacy forces the pre-overhaul grouped check kernel
	// (CheckStatsLegacy) instead of the dense joint-counting one. Only
	// meaningful with Stats set; results are identical — it exists for
	// the B12 ablation and differential tests.
	Legacy bool
	// Sketch routes the checks through the approximate triage tier
	// (CheckStatsSketch): the exact ‖r[X]‖ superkey fast path always, and
	// — only when the oracle's EnforceFD is support-insensitive
	// (expert.IsSupportInsensitive) — certain refutation from the
	// deterministic row sample. Accepted FDs, hidden objects, traces and
	// counters are bit-identical to the exact-only run; the tier only
	// skips kernel work, surfaced via the sketch-prunes and
	// sketch-escalations counters. Requires Stats; ignored with Legacy.
	Sketch bool
}

// CandidateTrace records how one element of LHS ∪ H was processed by
// RHS-Discovery.
type CandidateTrace struct {
	Candidate relation.Ref
	// Pruned is the candidate RHS set after the key/not-null reduction.
	Pruned relation.AttrSet
	// Accepted lists the attributes that entered B (held or enforced).
	Accepted relation.AttrSet
	// Enforced lists attributes the expert forced despite violations.
	Enforced relation.AttrSet
	// Outcome is one of "fd", "hidden-object", "given-up",
	// "stays-hidden", "fd-rejected".
	Outcome string
}

// String renders the trace line.
func (c CandidateTrace) String() string {
	return fmt.Sprintf("%s: T=%s B=%s -> %s", c.Candidate, c.Pruned, c.Accepted, c.Outcome)
}

// Result is the output of RHS-Discovery.
type Result struct {
	FDs []deps.FD
	// Hidden is the final set H of hidden objects.
	Hidden []relation.Ref
	Traces []CandidateTrace
	// ExtensionChecks counts A → b tests against the extension, the work
	// measure compared with the exhaustive baseline.
	ExtensionChecks int
}

// DiscoverRHS runs the paper's RHS-Discovery algorithm. Inputs are the
// database (for the extension and the catalog's keys and NOT NULLs), the
// candidate left-hand sides LHS and the hidden-object seeds H produced by
// LHS-Discovery, and the expert. Candidates are processed in canonical
// order so runs are deterministic.
//
// DiscoverRHS is the uncached, serial reference implementation; the
// differential harness compares DiscoverRHSOpts against it.
func DiscoverRHS(db *table.Database, lhs, hidden []relation.Ref, oracle expert.Oracle) (*Result, error) {
	plan, err := planRHS(db, lhs, hidden)
	if err != nil {
		return nil, err
	}
	lookup := func(cand relation.Ref, b string) (expert.FDSupport, error) {
		return Check(db.MustTable(cand.Rel), cand.Attrs.Names(), b)
	}
	return decideRHS(db, plan, oracle, lookup)
}

// DiscoverRHSOpts runs RHS-Discovery with the A → b extension checks
// precomputed through the statistics cache and/or a worker pool. The
// checks are pure reads and independent of every expert decision, so
// hoisting them ahead of the sequential decision loop preserves the
// algorithm's outcomes, traces, counters and the exact order of expert
// consultations.
func DiscoverRHSOpts(db *table.Database, lhs, hidden []relation.Ref, oracle expert.Oracle, o Opts) (*Result, error) {
	return DiscoverRHSOptsCtx(context.Background(), db, lhs, hidden, oracle, o)
}

// DiscoverRHSOptsCtx is DiscoverRHSOpts with observability threaded
// through the context: when a tracer is installed (obs.NewContext), the
// plan/check/decide stages become child spans, and the fd-checks and
// fd-rhs-pruned counters are published. Untraced contexts cost nothing
// (nil-span no-ops).
func DiscoverRHSOptsCtx(ctx context.Context, db *table.Database, lhs, hidden []relation.Ref, oracle expert.Oracle, o Opts) (*Result, error) {
	res, _, err := DiscoverRHSSupportsCtx(ctx, db, lhs, hidden, oracle, o)
	return res, err
}

// DiscoverRHSSupportsCtx is DiscoverRHSOptsCtx additionally returning
// the per-(candidate, attribute) support table the decisions were made
// from. The incremental re-validation path (delta.go) retains it as the
// warm state a later delta run re-checks against.
func DiscoverRHSSupportsCtx(ctx context.Context, db *table.Database, lhs, hidden []relation.Ref, oracle expert.Oracle, o Opts) (*Result, SupportMap, error) {
	tr := obs.FromContext(ctx)
	_, psp := obs.StartSpan(ctx, "plan")
	plan, err := planRHS(db, lhs, hidden)
	if err != nil {
		psp.End()
		return nil, nil, err
	}
	psp.SetInt("candidates", int64(len(plan.candidates)))
	psp.End()
	// fd-rhs-pruned: attributes the key/not-null reduction removed from
	// each candidate's schema before any extension check ran.
	var prunedAway int64
	for i, cand := range plan.candidates {
		if schema, ok := db.Catalog().Get(cand.Rel); ok {
			full := schema.AttrSet().Len() - cand.Attrs.Len()
			prunedAway += int64(full - plan.pruned[i].Len())
		}
	}
	tr.Add(obs.CtrRHSPruned, prunedAway)

	type chk struct {
		cand int
		attr string
	}
	var checks []chk
	for i := range plan.candidates {
		for _, b := range plan.pruned[i].Names() {
			checks = append(checks, chk{i, b})
		}
	}
	supports := make(SupportMap, len(checks))
	keyOf := func(c chk) [2]string {
		return [2]string{plan.candidates[c.cand].Key(), c.attr}
	}
	results := make([]expert.FDSupport, len(checks))
	errs := make([]error, len(checks))
	pruned := make([]bool, len(checks))
	sketchOn := o.Sketch && o.Stats != nil && !o.Legacy
	sampleRefute := sketchOn && expert.IsSupportInsensitive(oracle)
	_, ksp := obs.StartSpan(ctx, "check")
	stats.ForEach(len(checks), o.Workers, func(i int) {
		cand := plan.candidates[checks[i].cand]
		if sketchOn {
			results[i], pruned[i], errs[i] = CheckStatsSketch(o.Stats, cand.Rel, cand.Attrs.Names(), checks[i].attr, sampleRefute)
			return
		}
		if o.Stats != nil {
			if o.Legacy {
				results[i], errs[i] = CheckStatsLegacy(o.Stats, cand.Rel, cand.Attrs.Names(), checks[i].attr)
			} else {
				results[i], errs[i] = CheckStats(o.Stats, cand.Rel, cand.Attrs.Names(), checks[i].attr)
			}
			return
		}
		results[i], errs[i] = Check(db.MustTable(cand.Rel), cand.Attrs.Names(), checks[i].attr)
	})
	ksp.SetInt("checks", int64(len(checks)))
	ksp.SetInt("workers", int64(o.Workers))
	if sketchOn {
		var prunes int64
		for _, p := range pruned {
			if p {
				prunes++
			}
		}
		ksp.SetInt("sketch-prunes", prunes)
		tr.Add(obs.CtrSketchPrunes, prunes)
		tr.Add(obs.CtrSketchEscalations, int64(len(checks))-prunes)
	}
	ksp.End()
	tr.Add(obs.CtrFDChecks, int64(len(checks)))
	for i, err := range errs {
		if err != nil {
			return nil, nil, err
		}
		supports[keyOf(checks[i])] = results[i]
	}
	lookup := func(cand relation.Ref, b string) (expert.FDSupport, error) {
		return supports[[2]string{cand.Key(), b}], nil
	}
	_, dsp := obs.StartSpan(ctx, "decide")
	res, err := decideRHSCtx(ctx, db, plan, oracle, lookup)
	if err == nil {
		dsp.SetInt("fds", int64(len(res.FDs)))
		dsp.SetInt("hidden", int64(len(res.Hidden)))
	}
	dsp.End()
	if err != nil {
		return nil, nil, err
	}
	return res, supports, nil
}

// rhsPlan is the deterministic candidate schedule both variants share.
type rhsPlan struct {
	candidates []relation.Ref
	pruned     []relation.AttrSet // T per candidate
	seen       map[string]bool
	inHidden   map[string]bool
	hidden     []relation.Ref
}

// planRHS enumerates LHS ∪ H in canonical order and computes each
// candidate's pruned right-hand-side set T from the catalog. It reads
// only schema metadata, so it can run ahead of any extension check.
func planRHS(db *table.Database, lhs, hidden []relation.Ref) (*rhsPlan, error) {
	plan := &rhsPlan{
		seen:     make(map[string]bool),
		inHidden: make(map[string]bool, len(hidden)),
		hidden:   hidden,
	}
	for _, h := range hidden {
		plan.inHidden[h.Key()] = true
	}
	// LHS ∪ H, deduplicated, in canonical order.
	for _, r := range append(append([]relation.Ref{}, lhs...), hidden...) {
		if !plan.seen[r.Key()] {
			plan.seen[r.Key()] = true
			plan.candidates = append(plan.candidates, r)
		}
	}
	relation.SortRefs(plan.candidates)
	for _, cand := range plan.candidates {
		schema, ok := db.Catalog().Get(cand.Rel)
		if !ok {
			return nil, fmt.Errorf("fd: unknown relation %q", cand.Rel)
		}
		key, _ := schema.PrimaryKey()
		notNull := schema.NotNullSet()
		// T = X_i - A - K_i; if A ∉ N, also remove N ∩ X_i.
		t := schema.AttrSet().Minus(cand.Attrs).Minus(key)
		if !notNull.ContainsAll(cand.Attrs) {
			t = t.Minus(notNull)
		}
		plan.pruned = append(plan.pruned, t)
	}
	return plan, nil
}

// decideRHS replays the algorithm's decision branches over the planned
// candidates, obtaining each A → b support from lookup (a direct scan in
// the reference, a precomputed table in the cached/parallel variant).
func decideRHS(db *table.Database, plan *rhsPlan, oracle expert.Oracle, lookup func(relation.Ref, string) (expert.FDSupport, error)) (*Result, error) {
	return decideRHSCtx(context.Background(), db, plan, oracle, lookup)
}

// decideRHSCtx is decideRHS observing cancellation: a cancelled context
// stops the loop between candidates, so a cancelled run performs at most
// one more candidate's expert dialogue (which a ContextAware oracle
// aborts immediately anyway).
func decideRHSCtx(ctx context.Context, db *table.Database, plan *rhsPlan, oracle expert.Oracle, lookup func(relation.Ref, string) (expert.FDSupport, error)) (*Result, error) {
	if oracle == nil {
		oracle = expert.NewAuto()
	}
	res := &Result{}
	inHidden := plan.inHidden
	for ci, cand := range plan.candidates {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fd: cancelled after %d of %d candidates: %w", ci, len(plan.candidates), err)
		}
		tab := db.MustTable(cand.Rel)
		t := plan.pruned[ci]
		trace := CandidateTrace{Candidate: cand, Pruned: t}
		var accepted relation.AttrSet
		for _, b := range t.Names() {
			support, err := lookup(cand, b)
			if err != nil {
				return nil, err
			}
			res.ExtensionChecks++
			switch {
			case support.Holds():
				accepted = accepted.Add(b) // branch (i)
			case oracle.EnforceFD(cand.Rel, cand.Attrs, b, support):
				accepted = accepted.Add(b) // branch (ii)
				trace.Enforced = trace.Enforced.Add(b)
			}
		}
		trace.Accepted = accepted

		hiddenKey := cand.Key()
		if !accepted.IsEmpty() {
			fd := deps.NewFD(cand.Rel, cand.Attrs, accepted)
			support := expert.FDSupport{Rows: tab.Len()}
			if oracle.ValidateFD(fd, support) { // expert validation
				res.FDs = append(res.FDs, fd)
				if inHidden[hiddenKey] {
					inHidden[hiddenKey] = false // now conceptualized in F
				}
				trace.Outcome = "fd"
			} else {
				trace.Outcome = "fd-rejected"
			}
			res.Traces = append(res.Traces, trace)
			continue
		}
		// Empty right-hand side.
		switch {
		case inHidden[hiddenKey]:
			trace.Outcome = "stays-hidden" // already a hidden object
		case oracle.ConceptualizeHidden(cand):
			inHidden[hiddenKey] = true // branch (iv)
			trace.Outcome = "hidden-object"
		default:
			trace.Outcome = "given-up" // branch (v)
		}
		res.Traces = append(res.Traces, trace)
	}

	// Materialize the final H in canonical order.
	for _, cand := range plan.candidates {
		if inHidden[cand.Key()] {
			res.Hidden = append(res.Hidden, cand)
		}
	}
	// Hidden seeds never visited as candidates (defensive; LHS-Discovery
	// always lists them) survive too.
	for _, h := range plan.hidden {
		if inHidden[h.Key()] && !plan.seen[h.Key()] {
			res.Hidden = append(res.Hidden, h)
		}
	}
	relation.SortRefs(res.Hidden)
	deps.SortFDs(res.FDs)
	return res, nil
}

package fd

import (
	"fmt"

	"dbre/internal/deps"
	"dbre/internal/expert"
	"dbre/internal/relation"
	"dbre/internal/table"
)

// CandidateTrace records how one element of LHS ∪ H was processed by
// RHS-Discovery.
type CandidateTrace struct {
	Candidate relation.Ref
	// Pruned is the candidate RHS set after the key/not-null reduction.
	Pruned relation.AttrSet
	// Accepted lists the attributes that entered B (held or enforced).
	Accepted relation.AttrSet
	// Enforced lists attributes the expert forced despite violations.
	Enforced relation.AttrSet
	// Outcome is one of "fd", "hidden-object", "given-up",
	// "stays-hidden", "fd-rejected".
	Outcome string
}

// String renders the trace line.
func (c CandidateTrace) String() string {
	return fmt.Sprintf("%s: T=%s B=%s -> %s", c.Candidate, c.Pruned, c.Accepted, c.Outcome)
}

// Result is the output of RHS-Discovery.
type Result struct {
	FDs []deps.FD
	// Hidden is the final set H of hidden objects.
	Hidden []relation.Ref
	Traces []CandidateTrace
	// ExtensionChecks counts A → b tests against the extension, the work
	// measure compared with the exhaustive baseline.
	ExtensionChecks int
}

// DiscoverRHS runs the paper's RHS-Discovery algorithm. Inputs are the
// database (for the extension and the catalog's keys and NOT NULLs), the
// candidate left-hand sides LHS and the hidden-object seeds H produced by
// LHS-Discovery, and the expert. Candidates are processed in canonical
// order so runs are deterministic.
func DiscoverRHS(db *table.Database, lhs, hidden []relation.Ref, oracle expert.Oracle) (*Result, error) {
	if oracle == nil {
		oracle = expert.NewAuto()
	}
	res := &Result{}

	inHidden := make(map[string]bool, len(hidden))
	for _, h := range hidden {
		inHidden[h.Key()] = true
	}
	// LHS ∪ H, deduplicated, in canonical order.
	seen := make(map[string]bool)
	var candidates []relation.Ref
	for _, r := range append(append([]relation.Ref{}, lhs...), hidden...) {
		if !seen[r.Key()] {
			seen[r.Key()] = true
			candidates = append(candidates, r)
		}
	}
	relation.SortRefs(candidates)

	// N restricted per relation is recomputed from the catalog.
	for _, cand := range candidates {
		schema, ok := db.Catalog().Get(cand.Rel)
		if !ok {
			return nil, fmt.Errorf("fd: unknown relation %q", cand.Rel)
		}
		tab := db.MustTable(cand.Rel)
		key, _ := schema.PrimaryKey()
		notNull := schema.NotNullSet()

		// T = X_i - A - K_i; if A ∉ N, also remove N ∩ X_i.
		t := schema.AttrSet().Minus(cand.Attrs).Minus(key)
		if !notNull.ContainsAll(cand.Attrs) {
			t = t.Minus(notNull)
		}

		trace := CandidateTrace{Candidate: cand, Pruned: t}
		var accepted relation.AttrSet
		for _, b := range t.Names() {
			support, err := Check(tab, cand.Attrs.Names(), b)
			if err != nil {
				return nil, err
			}
			res.ExtensionChecks++
			switch {
			case support.Holds():
				accepted = accepted.Add(b) // branch (i)
			case oracle.EnforceFD(cand.Rel, cand.Attrs, b, support):
				accepted = accepted.Add(b) // branch (ii)
				trace.Enforced = trace.Enforced.Add(b)
			}
		}
		trace.Accepted = accepted

		hiddenKey := cand.Key()
		if !accepted.IsEmpty() {
			fd := deps.NewFD(cand.Rel, cand.Attrs, accepted)
			support := expert.FDSupport{Rows: tab.Len()}
			if oracle.ValidateFD(fd, support) { // expert validation
				res.FDs = append(res.FDs, fd)
				if inHidden[hiddenKey] {
					inHidden[hiddenKey] = false // now conceptualized in F
				}
				trace.Outcome = "fd"
			} else {
				trace.Outcome = "fd-rejected"
			}
			res.Traces = append(res.Traces, trace)
			continue
		}
		// Empty right-hand side.
		switch {
		case inHidden[hiddenKey]:
			trace.Outcome = "stays-hidden" // already a hidden object
		case oracle.ConceptualizeHidden(cand):
			inHidden[hiddenKey] = true // branch (iv)
			trace.Outcome = "hidden-object"
		default:
			trace.Outcome = "given-up" // branch (v)
		}
		res.Traces = append(res.Traces, trace)
	}

	// Materialize the final H in canonical order.
	for _, cand := range candidates {
		if inHidden[cand.Key()] {
			res.Hidden = append(res.Hidden, cand)
		}
	}
	// Hidden seeds never visited as candidates (defensive; LHS-Discovery
	// always lists them) survive too.
	for _, h := range hidden {
		if inHidden[h.Key()] && !seen[h.Key()] {
			res.Hidden = append(res.Hidden, h)
		}
	}
	relation.SortRefs(res.Hidden)
	deps.SortFDs(res.FDs)
	return res, nil
}

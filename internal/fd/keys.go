package fd

import (
	"context"
	"sort"

	"dbre/internal/obs"
	"dbre/internal/relation"
	"dbre/internal/stats"
	"dbre/internal/table"
)

// KeyInferenceOptions configures candidate-key inference from data.
type KeyInferenceOptions struct {
	// MaxSize bounds the size of inferred keys.
	MaxSize int
	// RequireNotNull restricts key candidates to columns without NULLs
	// (a data-supported key with NULLs cannot be declared UNIQUE anyway).
	RequireNotNull bool
	// Stats routes the distinct counts and NULL scans through the shared
	// column-statistics cache. It is consulted only for tables it can
	// resolve (the level-wise search re-counts many overlapping attribute
	// sets, so the reuse is substantial); nil scans directly.
	Stats *stats.Cache
}

// DefaultKeyInferenceOptions searches keys of up to three attributes over
// NULL-free columns.
func DefaultKeyInferenceOptions() KeyInferenceOptions {
	return KeyInferenceOptions{MaxSize: 3, RequireNotNull: true}
}

// InferKeys discovers the minimal attribute sets whose values are unique
// across the extension — candidate keys supported by the data. The paper
// assumes UNIQUE declarations exist in the dictionary, but motivates the
// whole enterprise by noting that "old versions of DBMSs do not support
// such declarations"; this inference closes that gap so the pipeline can
// run against dictionaries with no declared keys at all.
//
// Only data-supported presumptions are returned; like every elicited
// dependency in the method, they should be validated by the expert user
// before being promoted to constraints.
func InferKeys(tab *table.Table, opts KeyInferenceOptions) ([]relation.AttrSet, error) {
	if opts.MaxSize < 1 {
		opts.MaxSize = 1
	}
	schema := tab.Schema()
	// The cache keys statistics by relation name; consult it only when
	// that name resolves to this very table.
	cache := opts.Stats
	if cache != nil && cache.TableFor(schema.Name) != tab {
		cache = nil
	}
	hasNull := func(name string) bool {
		if cache != nil {
			nonNull, err := cache.NonNullRows(schema.Name, []string{name})
			if err == nil {
				return nonNull < tab.Len()
			}
		}
		return columnHasNull(tab, name)
	}
	var attrs []string
	for _, a := range schema.Attrs {
		if opts.RequireNotNull && hasNull(a.Name) {
			continue
		}
		attrs = append(attrs, a.Name)
	}
	sort.Strings(attrs)

	var keys []relation.AttrSet
	coveredBy := func(x relation.AttrSet) bool {
		for _, k := range keys {
			if x.ContainsAll(k) {
				return true
			}
		}
		return false
	}
	n := tab.Len()
	for size := 1; size <= opts.MaxSize && size <= len(attrs); size++ {
		var level [][]string
		if err := combos(len(attrs), size, func(pick []int) error {
			names := make([]string, size)
			for i, p := range pick {
				names[i] = attrs[p]
			}
			level = append(level, names)
			return nil
		}); err != nil {
			return nil, err
		}
		for _, names := range level {
			x := relation.NewAttrSet(names...)
			if coveredBy(x) {
				continue // superset of a found key: not minimal
			}
			// Unique iff the distinct count over NULL-free rows equals
			// the number of NULL-free rows.
			var distinct int
			var err error
			if cache != nil {
				distinct, err = cache.DistinctCount(schema.Name, names)
			} else {
				distinct, err = tab.DistinctCount(names)
			}
			if err != nil {
				return nil, err
			}
			rows := n
			if !opts.RequireNotNull {
				if cache != nil {
					rows, err = cache.NonNullRows(schema.Name, names)
					if err != nil {
						return nil, err
					}
				} else {
					rows = countNonNullRows(tab, names)
				}
			}
			if distinct == rows && rows > 0 {
				keys = append(keys, x)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	return keys, nil
}

func columnHasNull(tab *table.Table, name string) bool {
	nonNull, err := tab.CountNonNull([]string{name})
	if err != nil {
		return true
	}
	return nonNull < tab.Len()
}

func countNonNullRows(tab *table.Table, names []string) int {
	n, err := tab.CountNonNull(names)
	if err != nil {
		return 0
	}
	return n
}

// InferMissingKeys runs key inference over every relation of the database
// that has no declared UNIQUE constraint, declares the smallest inferred
// key (ties broken lexicographically) as the relation's primary key, and
// returns what was declared. Relations with no data-supported key (or no
// data) are left untouched.
func InferMissingKeys(db *table.Database, opts KeyInferenceOptions) ([]relation.Ref, error) {
	return InferMissingKeysCtx(context.Background(), db, opts)
}

// InferMissingKeysCtx is InferMissingKeys with observability threaded
// through the context: each keyless relation's level-wise search becomes
// an "infer-keys" child span. Untraced contexts cost nothing.
func InferMissingKeysCtx(ctx context.Context, db *table.Database, opts KeyInferenceOptions) ([]relation.Ref, error) {
	var declared []relation.Ref
	for _, name := range db.Catalog().Names() {
		schema, _ := db.Catalog().Get(name)
		if len(schema.Uniques) > 0 {
			continue
		}
		tab := db.MustTable(name)
		if tab.Len() == 0 {
			continue
		}
		_, sp := obs.StartSpan(ctx, "infer-keys")
		sp.SetAttr("relation", name)
		keys, err := InferKeys(tab, opts)
		sp.SetInt("keys", int64(len(keys)))
		sp.End()
		if err != nil {
			return nil, err
		}
		if len(keys) == 0 {
			continue
		}
		best := keys[0] // Compare order: smallest first, then lexicographic
		if err := schema.AddUnique(best); err != nil {
			return nil, err
		}
		declared = append(declared, relation.Ref{Rel: name, Attrs: best})
	}
	return declared, nil
}

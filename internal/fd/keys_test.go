package fd

import (
	"testing"

	"dbre/internal/relation"
	"dbre/internal/table"
	"dbre/internal/value"
)

func keysTable(t *testing.T, uniques ...relation.AttrSet) *table.Table {
	t.Helper()
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "id", Type: value.KindInt},
		{Name: "grp", Type: value.KindInt},
		{Name: "seq", Type: value.KindInt},
		{Name: "note", Type: value.KindString},
	}, uniques...)
	tab := table.New(s)
	// id unique; (grp,seq) unique; grp and seq individually not; note has
	// NULLs.
	rows := [][4]interface{}{
		{1, 1, 1, "a"},
		{2, 1, 2, nil},
		{3, 2, 1, "a"},
		{4, 2, 2, "b"},
	}
	for _, r := range rows {
		note := value.Null
		if r[3] != nil {
			note = value.NewString(r[3].(string))
		}
		tab.MustInsert(table.Row{
			value.NewInt(int64(r[0].(int))),
			value.NewInt(int64(r[1].(int))),
			value.NewInt(int64(r[2].(int))),
			note,
		})
	}
	return tab
}

func TestInferKeys(t *testing.T) {
	tab := keysTable(t)
	keys, err := InferKeys(tab, DefaultKeyInferenceOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"id": true, "{grp, seq}": true}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for _, k := range keys {
		if !want[k.String()] {
			t.Errorf("unexpected key %v", k)
		}
	}
	// Minimality: no superset of id.
	for _, k := range keys {
		if k.Contains("id") && k.Len() > 1 {
			t.Errorf("non-minimal key %v", k)
		}
	}
	// note excluded (has NULLs) under RequireNotNull.
	for _, k := range keys {
		if k.Contains("note") {
			t.Errorf("nullable attribute in key %v", k)
		}
	}
}

func TestInferKeysNullableAllowed(t *testing.T) {
	tab := keysTable(t)
	opts := KeyInferenceOptions{MaxSize: 1, RequireNotNull: false}
	keys, err := InferKeys(tab, opts)
	if err != nil {
		t.Fatal(err)
	}
	// note is unique over its non-null rows {a, a?} — no: a appears twice.
	for _, k := range keys {
		if k.Contains("note") {
			t.Errorf("non-unique nullable attribute accepted: %v", k)
		}
	}
	if len(keys) != 1 || !keys[0].Equal(relation.NewAttrSet("id")) {
		t.Errorf("keys = %v", keys)
	}
}

func TestInferKeysEmptyTable(t *testing.T) {
	s := relation.MustSchema("E", []relation.Attribute{{Name: "a", Type: value.KindInt}})
	keys, err := InferKeys(table.New(s), DefaultKeyInferenceOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("empty table produced keys %v", keys)
	}
}

func TestInferKeysMaxSize(t *testing.T) {
	tab := keysTable(t)
	keys, err := InferKeys(tab, KeyInferenceOptions{MaxSize: 1, RequireNotNull: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || !keys[0].Equal(relation.NewAttrSet("id")) {
		t.Errorf("keys = %v", keys)
	}
	// MaxSize < 1 clamps.
	if _, err := InferKeys(tab, KeyInferenceOptions{MaxSize: 0, RequireNotNull: true}); err != nil {
		t.Fatal(err)
	}
}

func TestInferMissingKeys(t *testing.T) {
	// One keyless relation, one with a declared key, one empty.
	noKey := relation.MustSchema("NoKey", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	})
	withKey := relation.MustSchema("WithKey", []relation.Attribute{
		{Name: "x", Type: value.KindInt},
	}, relation.NewAttrSet("x"))
	empty := relation.MustSchema("Empty", []relation.Attribute{
		{Name: "e", Type: value.KindInt},
	})
	db := table.NewDatabase(relation.MustCatalog(noKey, withKey, empty))
	db.MustTable("NoKey").MustInsert(table.Row{value.NewInt(1), value.NewInt(5)})
	db.MustTable("NoKey").MustInsert(table.Row{value.NewInt(2), value.NewInt(5)})
	db.MustTable("WithKey").MustInsert(table.Row{value.NewInt(1)})

	declared, err := InferMissingKeys(db, DefaultKeyInferenceOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(declared) != 1 || declared[0].String() != "NoKey.a" {
		t.Fatalf("declared = %v", declared)
	}
	s, _ := db.Catalog().Get("NoKey")
	if pk, ok := s.PrimaryKey(); !ok || !pk.Equal(relation.NewAttrSet("a")) {
		t.Errorf("NoKey key = %v %v", pk, ok)
	}
	// Pre-declared and empty relations untouched.
	s2, _ := db.Catalog().Get("WithKey")
	if len(s2.Uniques) != 1 {
		t.Error("WithKey modified")
	}
	s3, _ := db.Catalog().Get("Empty")
	if len(s3.Uniques) != 0 {
		t.Error("Empty got a key")
	}
}

func TestInferMissingKeysNoSupportedKey(t *testing.T) {
	// All columns have duplicates and NULLs: nothing inferable.
	s := relation.MustSchema("Dup", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
	})
	db := table.NewDatabase(relation.MustCatalog(s))
	db.MustTable("Dup").MustInsert(table.Row{value.NewInt(1)})
	db.MustTable("Dup").MustInsert(table.Row{value.NewInt(1)})
	declared, err := InferMissingKeys(db, DefaultKeyInferenceOptions())
	if err != nil || len(declared) != 0 {
		t.Errorf("declared = %v, %v", declared, err)
	}
}

package fd

import (
	"fmt"
	"testing"

	"dbre/internal/expert"
	"dbre/internal/relation"
	"dbre/internal/stats"
	"dbre/internal/table"
	"dbre/internal/value"
	"dbre/internal/workload"
)

// sketchCheckDB builds R(a,b,c) with n rows: a is unique (a superkey),
// b = i%5, c = i%3 — so b → c is heavily violated.
func sketchCheckDB(n int) *table.Database {
	db := table.NewDatabase(relation.MustCatalog(
		relation.MustSchema("R", []relation.Attribute{
			{Name: "a", Type: value.KindInt},
			{Name: "b", Type: value.KindInt},
			{Name: "c", Type: value.KindInt},
		}),
	))
	tab := db.MustTable("R")
	for i := 0; i < n; i++ {
		tab.MustInsert(table.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 5)),
			value.NewInt(int64(i % 3)),
		})
	}
	return db
}

func TestCheckStatsSketchSuperkey(t *testing.T) {
	db := sketchCheckDB(200)
	cache := stats.NewCache(db)
	got, pruned, err := CheckStatsSketch(cache, "R", []string{"a"}, "b", false)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned {
		t.Fatal("unique lhs did not take the superkey fast path")
	}
	want, err := CheckStats(stats.NewCache(db), "R", []string{"a"}, "b")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("superkey fast path support = %+v, exact = %+v", got, want)
	}
	if !got.Holds() || got.Rows != 200 {
		t.Errorf("support = %+v, want 200 rows, 0 violations", got)
	}
}

func TestCheckStatsSketchSampleRefutation(t *testing.T) {
	db := sketchCheckDB(200)

	// Without sample refutation a non-superkey lhs is never pruned.
	got, pruned, err := CheckStatsSketch(stats.NewCache(db), "R", []string{"b"}, "c", false)
	if err != nil {
		t.Fatal(err)
	}
	if pruned {
		t.Fatalf("b is no superkey and sampling is off, yet pruned with %+v", got)
	}

	// With it, the heavily-violated b → c is certainly refuted, and the
	// reported violation count is a lower bound on the exact one.
	got, pruned, err = CheckStatsSketch(stats.NewCache(db), "R", []string{"b"}, "c", true)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned {
		t.Fatal("sample refutation missed a dependency violated in most groups")
	}
	if got.Holds() {
		t.Errorf("refuted support claims to hold: %+v", got)
	}
	exact, err := CheckStats(stats.NewCache(db), "R", []string{"b"}, "c")
	if err != nil {
		t.Fatal(err)
	}
	if exact.Holds() {
		t.Fatalf("test premise broken: b → c holds exactly")
	}
	if got.Violations > exact.Violations {
		t.Errorf("sampled violations %d exceed the exact %d — not a lower bound",
			got.Violations, exact.Violations)
	}

	// A dependency that actually holds must never be refuted: fall
	// through to the exact kernel instead.
	_, pruned, err = CheckStatsSketch(stats.NewCache(db), "R", []string{"a", "b"}, "c", true)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned {
		// {a,b} is a superkey, so this lands in the first fast path —
		// the point is it must not be reported as refuted.
		t.Error("superkey lhs not pruned")
	}
}

// rhsDiffWorkload builds the adversarial workload plus the candidate lhs
// list the RHS-Discovery differential legs run over.
func rhsDiffWorkload(t *testing.T, seed int64) (*table.Database, []relation.Ref) {
	t.Helper()
	wl, err := workload.Generate(workload.Spec{
		Seed: seed, Dimensions: 3, Facts: 2, FKsPerFact: 2,
		AttrsPerDimension: 2, DimensionRows: 50, FactRows: 300,
		EmbedProb: 0.7, DropProb: 0.3, Corruption: 0.01, ProgramsPerJoin: 1,
		FarMissAttrs: 2, NearMissAttrs: 1, NearMissNoise: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lhs []relation.Ref
	for _, l := range wl.Truth.Links {
		lhs = append(lhs, relation.NewRef(l.Fact, l.FKs...))
	}
	return wl.DB, lhs
}

// TestDiscoverRHSSketchDifferential pins the triage tier's contract on
// RHS-Discovery: FDs, hidden objects, traces, check counts — and for a
// recording expert the full decision log — are identical sketch-on vs
// sketch-off, for support-insensitive and support-sensitive oracles
// alike.
func TestDiscoverRHSSketchDifferential(t *testing.T) {
	tolerant := func() expert.Oracle {
		a := expert.NewAuto()
		a.MaxViolationRate = 0.2 // support-sensitive: sampling must stay off
		return a
	}
	oracles := []struct {
		name string
		mk   func() expert.Oracle
	}{
		{"deny", func() expert.Oracle { return expert.Deny{} }},
		{"tolerant-auto", tolerant},
		{"recording", func() expert.Oracle { return expert.NewRecording(expert.Deny{}) }},
	}
	for _, oc := range oracles {
		t.Run(oc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				db, lhs := rhsDiffWorkload(t, seed)
				exOracle := oc.mk()
				exact, err := DiscoverRHSOpts(db, lhs, nil, exOracle, Opts{Stats: stats.NewCache(db)})
				if err != nil {
					t.Fatal(err)
				}
				skOracle := oc.mk()
				triaged, err := DiscoverRHSOpts(db, lhs, nil, skOracle,
					Opts{Stats: stats.NewCache(db), Sketch: true})
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(exact.FDs) != fmt.Sprint(triaged.FDs) {
					t.Errorf("seed %d: FDs diverged:\n%v\nvs\n%v", seed, exact.FDs, triaged.FDs)
				}
				if fmt.Sprint(exact.Hidden) != fmt.Sprint(triaged.Hidden) {
					t.Errorf("seed %d: hidden objects diverged", seed)
				}
				if fmt.Sprint(exact.Traces) != fmt.Sprint(triaged.Traces) {
					t.Errorf("seed %d: traces diverged", seed)
				}
				if exact.ExtensionChecks != triaged.ExtensionChecks {
					t.Errorf("seed %d: ExtensionChecks %d vs %d",
						seed, exact.ExtensionChecks, triaged.ExtensionChecks)
				}
				if rec, ok := exOracle.(*expert.Recording); ok {
					skRec := skOracle.(*expert.Recording)
					if fmt.Sprint(rec.Log) != fmt.Sprint(skRec.Log) {
						t.Errorf("seed %d: expert dialogue diverged:\n%v\nvs\n%v",
							seed, rec.Log, skRec.Log)
					}
				}
			}
		})
	}
}

package fd

import (
	"fmt"
	"math/rand"
	"testing"

	"dbre/internal/relation"
	"dbre/internal/stats"
	"dbre/internal/table"
	"dbre/internal/value"
)

// Differential tests for the FD check kernels: the dense joint-count
// kernel (CheckStats), the sorted map kernel it replaced
// (CheckStatsLegacy), and the direct row scan (Check) must agree on
// support counts for every candidate dependency, over NULL-bearing
// randomized tables, under both partition-refinement remapping
// strategies, and across the dense-budget fallback boundary.

// kernelDB builds R(a,b,c,d) where a/b/c are small-domain NULL-bearing
// columns (the dense regime) and d is near-unique (with wide to force
// the over-budget fallback to the legacy kernel).
func kernelDB(tb testing.TB, seed int64, nrows int, wide bool) *table.Database {
	tb.Helper()
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
		{Name: "c", Type: value.KindString},
		{Name: "d", Type: value.KindInt},
	})
	db := table.NewDatabase(relation.MustCatalog(s))
	tab := db.MustTable("R")
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nrows; i++ {
		draw := func(dom int) value.Value {
			if rng.Intn(6) == 0 {
				return value.Null
			}
			return value.NewInt(int64(rng.Intn(dom)))
		}
		str := value.Value(value.Null)
		if rng.Intn(6) != 0 {
			str = value.NewString(fmt.Sprintf("s%d", rng.Intn(4)))
		}
		d := value.Value(value.NewInt(int64(i)))
		if !wide {
			d = draw(9)
		}
		tab.InsertUnchecked(table.Row{draw(8), draw(5), str, d})
	}
	return db
}

// kernelCandidates enumerates the dependencies under test; rhs "c" and
// "b" carry NULLs, lhs lists mix nullable attributes and composites.
var kernelCandidates = []struct {
	lhs []string
	rhs string
}{
	{[]string{"a"}, "b"},
	{[]string{"a"}, "c"},
	{[]string{"b"}, "a"},
	{[]string{"a", "b"}, "c"},
	{[]string{"c", "a"}, "b"},
	{[]string{"d"}, "a"},
	{[]string{"a", "d"}, "b"},
	{[]string{"a", "b", "c"}, "d"},
}

func compareKernels(t *testing.T, db *table.Database, label string) {
	t.Helper()
	tab := db.MustTable("R")
	cache := stats.NewCache(db)
	for _, cand := range kernelCandidates {
		want, err := Check(tab, cand.lhs, cand.rhs)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := CheckStatsLegacy(cache, "R", cand.lhs, cand.rhs)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := CheckStats(cache, "R", cand.lhs, cand.rhs)
		if err != nil {
			t.Fatal(err)
		}
		if legacy != want {
			t.Errorf("%s: CheckStatsLegacy(%v -> %s) = %+v, row scan says %+v",
				label, cand.lhs, cand.rhs, legacy, want)
		}
		if dense != want {
			t.Errorf("%s: CheckStats(%v -> %s) = %+v, row scan says %+v",
				label, cand.lhs, cand.rhs, dense, want)
		}
	}
}

// TestCheckKernelDifferential sweeps randomized tables through all three
// check kernels under both refinement remapping strategies.
func TestCheckKernelDifferential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			db := kernelDB(t, seed, 80+int(seed)*23, false)
			for _, budget := range []int64{-1, 0} {
				prev := table.SetRefineDenseBudget(budget)
				compareKernels(t, db, fmt.Sprintf("budget %d", budget))
				table.SetRefineDenseBudget(prev)
			}
		})
	}
}

// TestCheckKernelFallbackBoundary uses a near-unique column so that
// candidates involving d overflow the dense joint-count budget
// (nLHS × (nRHS+1) > 4n + 2^16) and exercise CheckStats's fallback to
// the legacy kernel, while the small-domain candidates in the same
// sweep stay on the dense path.
func TestCheckKernelFallbackBoundary(t *testing.T) {
	db := kernelDB(t, 77, 400, true)
	// Sanity-check the budget really is exceeded for the widest pair:
	// d near-unique against itself-scale domains.
	tab := db.MustTable("R")
	pd, err := tab.Projection([]string{"d"})
	if err != nil {
		t.Fatal(err)
	}
	if int64(pd.Len())*int64(pd.Len()+1) <= int64(checkDenseSlack*tab.Len()+checkDenseFloor) {
		t.Fatalf("fixture too small to cross the dense budget: %d groups over %d rows", pd.Len(), tab.Len())
	}
	compareKernels(t, db, "fallback")
	// And the same candidates with d as the RHS: wide stride.
	cache := stats.NewCache(db)
	for _, lhs := range [][]string{{"d"}, {"a", "d"}} {
		want, err := Check(tab, lhs, "d")
		if err != nil {
			t.Fatal(err)
		}
		got, err := CheckStats(cache, "R", lhs, "d")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("CheckStats(%v -> d) = %+v, row scan says %+v", lhs, got, want)
		}
	}
}

package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
		KindBool:   "BOOLEAN",
		KindDate:   "DATE",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromTypeName(t *testing.T) {
	cases := map[string]Kind{
		"INT":      KindInt,
		"integer":  KindInt,
		"Number":   KindInt,
		"FLOAT":    KindFloat,
		"decimal":  KindFloat,
		"CHAR":     KindString,
		"VARCHAR":  KindString,
		"varchar2": KindString,
		"BOOLEAN":  KindBool,
		"DATE":     KindDate,
		"mystery":  KindString,
	}
	for name, want := range cases {
		if got := KindFromTypeName(name); got != want {
			t.Errorf("KindFromTypeName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind() != KindInt || v.Int() != 42 {
		t.Errorf("NewInt(42) = %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat(2.5) = %v", v)
	}
	if v := NewString("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Errorf("NewString = %v", v)
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Errorf("NewBool(true) = %v", v)
	}
	d := NewDate(1996, time.February, 26)
	if d.Kind() != KindDate || d.Date().Format("2006-01-02") != "1996-02-26" {
		t.Errorf("NewDate = %v (%v)", d, d.Date())
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Error("Null is not null")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Float on int", func() { NewInt(1).Float() })
	mustPanic("Str on int", func() { NewInt(1).Str() })
	mustPanic("Bool on int", func() { NewInt(1).Bool() })
	mustPanic("Date on int", func() { NewInt(1).Date() })
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{NewInt(1), NewInt(1), true},
		{NewInt(1), NewInt(2), false},
		{NewInt(1), NewFloat(1), false}, // no cross-kind equality
		{NewString("a"), NewString("a"), true},
		{NewString("a"), NewString("b"), false},
		{Null, Null, true}, // grouping equality
		{Null, NewInt(0), false},
		{NewBool(true), NewBool(true), true},
		{NewBool(true), NewBool(false), false},
		{NewFloat(math.NaN()), NewFloat(math.NaN()), true},
		{NewDate(2000, 1, 1), NewDate(2000, 1, 1), true},
		{NewDate(2000, 1, 1), NewDate(2000, 1, 2), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	ordered := []Value{
		Null,
		NewInt(-5), NewInt(0), NewInt(7),
		NewFloat(math.NaN()), NewFloat(-1.5), NewFloat(3.25),
		NewString(""), NewString("a"), NewString("ab"),
		NewBool(false), NewBool(true),
		NewDate(1995, 1, 1), NewDate(1996, 6, 6),
	}
	for i, a := range ordered {
		for j, b := range ordered {
			got := a.Compare(b)
			switch {
			case i < j && got != -1:
				t.Errorf("Compare(%v,%v) = %d, want -1", a, b, got)
			case i > j && got != 1:
				t.Errorf("Compare(%v,%v) = %d, want 1", a, b, got)
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", a, b, got)
			}
		}
	}
}

func TestHashConsistency(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(5), NewInt(5)},
		{NewString("hello"), NewString("hello")},
		{Null, Null},
		{NewBool(true), NewBool(true)},
		{NewFloat(1.25), NewFloat(1.25)},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values hash differently: %v", p[0])
		}
	}
	// Different payloads should (overwhelmingly) hash differently.
	if NewInt(1).Hash() == NewInt(2).Hash() {
		t.Error("suspicious hash collision 1 vs 2")
	}
	if NewInt(1).Hash() == NewFloat(1).Hash() {
		t.Error("int and float with same payload should differ (kind mixed in)")
	}
}

func TestStringAndSQL(t *testing.T) {
	cases := []struct {
		v         Value
		str, sqlv string
	}{
		{Null, "NULL", "NULL"},
		{NewInt(-3), "-3", "-3"},
		{NewFloat(2.5), "2.5", "2.5"},
		{NewString("o'brien"), "o'brien", "'o''brien'"},
		{NewBool(true), "true", "TRUE"},
		{NewBool(false), "false", "FALSE"},
		{NewDate(1996, 2, 26), "1996-02-26", "'1996-02-26'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.str {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.str)
		}
		if got := c.v.SQL(); got != c.sqlv {
			t.Errorf("SQL(%#v) = %q, want %q", c.v, got, c.sqlv)
		}
	}
}

func TestKeyUniqueness(t *testing.T) {
	vs := []Value{
		Null, NewInt(0), NewInt(1), NewFloat(0), NewFloat(1),
		NewString(""), NewString("0"), NewString("i0"), NewBool(false),
		NewBool(true), NewDate(1970, 1, 1), NewDate(1970, 1, 2),
	}
	seen := make(map[string]Value)
	for _, v := range vs {
		k := v.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("Key collision between %v and %v: %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		text string
		kind Kind
		want Value
		ok   bool
	}{
		{"", KindInt, Null, true},
		{"NULL", KindString, Null, true},
		{"null", KindFloat, Null, true},
		{"42", KindInt, NewInt(42), true},
		{" 42 ", KindInt, NewInt(42), true},
		{"4.5", KindFloat, NewFloat(4.5), true},
		{"true", KindBool, NewBool(true), true},
		{"1996-02-26", KindDate, NewDate(1996, 2, 26), true},
		{"abc", KindString, NewString("abc"), true},
		{"abc", KindInt, Null, false},
		{"abc", KindFloat, Null, false},
		{"abc", KindBool, Null, false},
		{"abc", KindDate, Null, false},
	}
	for _, c := range cases {
		got, err := Parse(c.text, c.kind)
		if (err == nil) != c.ok {
			t.Errorf("Parse(%q,%v) err=%v, ok want %v", c.text, c.kind, err, c.ok)
			continue
		}
		if c.ok && !got.Equal(c.want) {
			t.Errorf("Parse(%q,%v) = %v, want %v", c.text, c.kind, got, c.want)
		}
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		want Value
		ok   bool
	}{
		{NewInt(3), KindFloat, NewFloat(3), true},
		{NewInt(3), KindString, NewString("3"), true},
		{NewString("7"), KindInt, NewInt(7), true},
		{NewString("x"), KindInt, Null, false},
		{Null, KindInt, Null, true},
		{NewFloat(1.5), KindInt, Null, false},
		{NewBool(true), KindString, NewString("true"), true},
	}
	for _, c := range cases {
		got, ok := Coerce(c.v, c.kind)
		if ok != c.ok {
			t.Errorf("Coerce(%v,%v) ok=%v, want %v", c.v, c.kind, ok, c.ok)
			continue
		}
		if ok && !got.Equal(c.want) {
			t.Errorf("Coerce(%v,%v) = %v, want %v", c.v, c.kind, got, c.want)
		}
	}
}

// randomValue builds an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(2000) - 1000))
	case 2:
		return NewFloat(float64(r.Intn(2000))/8 - 100)
	case 3:
		b := make([]byte, r.Intn(8))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return NewString(string(b))
	case 4:
		return NewBool(r.Intn(2) == 0)
	default:
		return NewDate(1990+r.Intn(20), time.Month(1+r.Intn(12)), 1+r.Intn(28))
	}
}

type valuePair struct{ A, B Value }

// Generate implements quick.Generator.
func (valuePair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valuePair{randomValue(r), randomValue(r)})
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(p valuePair) bool {
		return p.A.Compare(p.B) == -p.B.Compare(p.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualIffCompareZero(t *testing.T) {
	f := func(p valuePair) bool {
		return p.A.Equal(p.B) == (p.A.Compare(p.B) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualImpliesSameHashAndKey(t *testing.T) {
	f := func(p valuePair) bool {
		if !p.A.Equal(p.B) {
			return true
		}
		return p.A.Hash() == p.B.Hash() && p.A.Key() == p.B.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

type valueTriple struct{ A, B, C Value }

// Generate implements quick.Generator.
func (valueTriple) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueTriple{randomValue(r), randomValue(r), randomValue(r)})
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(p valueTriple) bool {
		if p.A.Compare(p.B) <= 0 && p.B.Compare(p.C) <= 0 {
			return p.A.Compare(p.C) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	// String() of a non-null value re-parses to an equal value for
	// every kind (floats via 'g' formatting are exact).
	f := func(p valuePair) bool {
		v := p.A
		if v.IsNull() {
			return true
		}
		if v.Kind() == KindString && (v.Str() == "" || v.Str() == "null" || v.Str() == "NULL") {
			return true // representation overlaps the NULL spelling
		}
		got, err := Parse(v.String(), v.Kind())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Package value implements the typed, NULL-aware scalar values stored in
// database extensions. Values are immutable and comparable; they support a
// total order within a type (used for deterministic output and sorting) and
// hashing (used by the distinct-count and join operators of internal/table).
package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the supported scalar types.
type Kind uint8

// The supported kinds. KindNull is the kind of the SQL NULL marker.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromTypeName maps a SQL type name (as found in a CREATE TABLE
// statement) onto a Kind. Unknown names map to KindString, mirroring how
// legacy data dictionaries defaulted to character data.
func KindFromTypeName(name string) Kind {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "SMALLINT", "BIGINT", "NUMBER", "SERIAL":
		return KindInt
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return KindFloat
	case "BOOL", "BOOLEAN":
		return KindBool
	case "DATE", "DATETIME", "TIMESTAMP":
		return KindDate
	default:
		return KindString
	}
}

// Value is a single typed scalar. The zero Value is NULL.
//
// Value is a small struct passed by value everywhere; it holds at most one
// of its payload fields depending on kind.
type Value struct {
	kind Kind
	i    int64   // KindInt, KindBool (0/1), KindDate (unix days)
	f    float64 // KindFloat
	s    string  // KindString
}

// Null is the SQL NULL marker.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewDate returns a date value with day granularity.
func NewDate(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{kind: KindDate, i: t.Unix() / 86400}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is the NULL marker.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the payload of an integer value. It panics on other kinds.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("value: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the payload of a float value. It panics on other kinds.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic("value: Float() on " + v.kind.String())
	}
	return v.f
}

// Str returns the payload of a string value. It panics on other kinds.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("value: Str() on " + v.kind.String())
	}
	return v.s
}

// Bool returns the payload of a boolean value. It panics on other kinds.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("value: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// Date returns the payload of a date value. It panics on other kinds.
func (v Value) Date() time.Time {
	if v.kind != KindDate {
		panic("value: Date() on " + v.kind.String())
	}
	return time.Unix(v.i*86400, 0).UTC()
}

// Equal reports SQL value identity: NULL equals NULL here (this is the
// grouping/distinct notion of equality, not the three-valued `=` predicate).
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindFloat:
		return v.f == w.f || (math.IsNaN(v.f) && math.IsNaN(w.f))
	case KindString:
		return v.s == w.s
	default:
		return v.i == w.i
	}
}

// Compare imposes a total order: NULL first, then by kind, then by payload.
// It returns -1, 0 or +1. The cross-kind order is arbitrary but fixed; it
// exists so results can be printed deterministically.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindFloat:
		switch {
		case v.f < w.f:
			return -1
		case v.f > w.f:
			return 1
		case math.IsNaN(v.f) && !math.IsNaN(w.f):
			return -1
		case !math.IsNaN(v.f) && math.IsNaN(w.f):
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(v.s, w.s)
	default:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		default:
			return 0
		}
	}
}

// Hash returns a 64-bit FNV-1a style hash of the value, with NULL hashing to
// a fixed sentinel. Equal values hash equally.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix(byte(v.kind))
	switch v.kind {
	case KindNull:
		mix(0xAA)
	case KindFloat:
		bits := math.Float64bits(v.f)
		for s := 0; s < 64; s += 8 {
			mix(byte(bits >> s))
		}
	case KindString:
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	default:
		bits := uint64(v.i)
		for s := 0; s < 64; s += 8 {
			mix(byte(bits >> s))
		}
	}
	return h
}

// String renders the value for human consumption.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return v.Date().Format("2006-01-02")
	default:
		return "?"
	}
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	switch v.kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindDate:
		return "'" + v.Date().Format("2006-01-02") + "'"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}

// AppendKey appends the Key() encoding of v to b without allocating a
// string — the hot loop of the projection-index build calls it once per
// row, so per-value garbage matters.
//
// The encoding is self-delimiting: every variant is a kind byte followed
// by a payload that cannot run into a following key. Numeric payloads use
// a fixed alphabet that excludes every separator byte, and string payloads
// are uvarint length-prefixed, so concatenations of keys (the composite
// group keys of internal/table) are unambiguous even when string values
// contain separator bytes or whole encoded keys.
func (v Value) AppendKey(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(b, '\x00')
	case KindInt:
		return strconv.AppendInt(append(b, 'i'), v.i, 10)
	case KindFloat:
		return strconv.AppendUint(append(b, 'f'), math.Float64bits(v.f), 16)
	case KindString:
		b = append(b, 's')
		b = binary.AppendUvarint(b, uint64(len(v.s)))
		return append(b, v.s...)
	case KindBool:
		return strconv.AppendInt(append(b, 'b'), v.i, 10)
	case KindDate:
		return strconv.AppendInt(append(b, 'd'), v.i, 10)
	default:
		return append(b, '?')
	}
}

// Key returns a compact string usable as a map key; distinct values have
// distinct keys. It is exactly string(v.AppendKey(nil)) — the two
// encodings must stay byte-identical because composite keys built from
// either are compared against each other across the engine.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		return "f" + strconv.FormatUint(math.Float64bits(v.f), 16)
	case KindString:
		return string(v.AppendKey(make([]byte, 0, len(v.s)+11)))
	case KindBool:
		return "b" + strconv.FormatInt(v.i, 10)
	case KindDate:
		return "d" + strconv.FormatInt(v.i, 10)
	default:
		return "?"
	}
}

// Parse converts a textual field into a Value of the requested kind. Empty
// strings and the literals "NULL"/"null" parse to NULL for every kind,
// matching how legacy unload files represent missing data.
func Parse(text string, kind Kind) (Value, error) {
	if text == "" || strings.EqualFold(text, "null") {
		return Null, nil
	}
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Null, fmt.Errorf("value: parsing %q as INTEGER: %w", text, err)
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return Null, fmt.Errorf("value: parsing %q as FLOAT: %w", text, err)
		}
		return NewFloat(f), nil
	case KindBool:
		b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(text)))
		if err != nil {
			return Null, fmt.Errorf("value: parsing %q as BOOLEAN: %w", text, err)
		}
		return NewBool(b), nil
	case KindDate:
		t, err := time.Parse("2006-01-02", strings.TrimSpace(text))
		if err != nil {
			return Null, fmt.Errorf("value: parsing %q as DATE: %w", text, err)
		}
		return NewDate(t.Year(), t.Month(), t.Day()), nil
	case KindString:
		return NewString(text), nil
	case KindNull:
		return Null, nil
	default:
		return Null, fmt.Errorf("value: unknown kind %v", kind)
	}
}

// Coerce converts v to the requested kind where a lossless or conventional
// conversion exists (int→float, anything→string via String, string→kind via
// Parse). It returns false when no sensible conversion exists.
func Coerce(v Value, kind Kind) (Value, bool) {
	if v.IsNull() || v.kind == kind {
		return v, true
	}
	switch kind {
	case KindFloat:
		if v.kind == KindInt {
			return NewFloat(float64(v.i)), true
		}
	case KindString:
		return NewString(v.String()), true
	}
	if v.kind == KindString {
		w, err := Parse(v.s, kind)
		if err == nil {
			return w, true
		}
	}
	return Null, false
}

package relation

import (
	"sort"
	"strings"
)

// AttrSet is an immutable, duplicate-free, sorted set of attribute names.
// The zero value is the empty set. Functions never mutate their receiver.
//
// Attribute names are compared case-sensitively: the paper makes no
// assumption on attribute naming, and legacy dictionaries are typically
// case-preserving.
type AttrSet struct {
	names []string // sorted, unique
}

// NewAttrSet builds a set from the given names, deduplicating and sorting.
func NewAttrSet(names ...string) AttrSet {
	if len(names) == 0 {
		return AttrSet{}
	}
	cp := make([]string, len(names))
	copy(cp, names)
	sort.Strings(cp)
	out := cp[:1]
	for _, n := range cp[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return AttrSet{names: out}
}

// Len reports the number of attributes in the set.
func (s AttrSet) Len() int { return len(s.names) }

// IsEmpty reports whether the set is empty.
func (s AttrSet) IsEmpty() bool { return len(s.names) == 0 }

// Names returns the sorted attribute names. The caller must not modify the
// returned slice.
func (s AttrSet) Names() []string { return s.names }

// Contains reports whether a is a member of s.
func (s AttrSet) Contains(a string) bool {
	i := sort.SearchStrings(s.names, a)
	return i < len(s.names) && s.names[i] == a
}

// ContainsAll reports whether every member of t is a member of s.
func (s AttrSet) ContainsAll(t AttrSet) bool {
	i := 0
	for _, a := range t.names {
		for i < len(s.names) && s.names[i] < a {
			i++
		}
		if i == len(s.names) || s.names[i] != a {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s AttrSet) Equal(t AttrSet) bool {
	if len(s.names) != len(t.names) {
		return false
	}
	for i, a := range s.names {
		if t.names[i] != a {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s AttrSet) Union(t AttrSet) AttrSet {
	if t.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return t
	}
	return NewAttrSet(append(append([]string{}, s.names...), t.names...)...)
}

// Add returns s ∪ {names...}.
func (s AttrSet) Add(names ...string) AttrSet {
	return s.Union(NewAttrSet(names...))
}

// Minus returns s \ t.
func (s AttrSet) Minus(t AttrSet) AttrSet {
	if s.IsEmpty() || t.IsEmpty() {
		return s
	}
	var out []string
	for _, a := range s.names {
		if !t.Contains(a) {
			out = append(out, a)
		}
	}
	return AttrSet{names: out}
}

// Intersect returns s ∩ t.
func (s AttrSet) Intersect(t AttrSet) AttrSet {
	var out []string
	for _, a := range s.names {
		if t.Contains(a) {
			out = append(out, a)
		}
	}
	return AttrSet{names: out}
}

// Compare imposes a total order on sets (shorter first, then
// lexicographic), used for deterministic output ordering.
func (s AttrSet) Compare(t AttrSet) int {
	if len(s.names) != len(t.names) {
		if len(s.names) < len(t.names) {
			return -1
		}
		return 1
	}
	for i, a := range s.names {
		if c := strings.Compare(a, t.names[i]); c != 0 {
			return c
		}
	}
	return 0
}

// String renders the set as "{a, b, c}"; singletons render bare per the
// paper's notational convention.
func (s AttrSet) String() string {
	if len(s.names) == 1 {
		return s.names[0]
	}
	return "{" + strings.Join(s.names, ", ") + "}"
}

// Key returns a canonical map key for the set.
func (s AttrSet) Key() string { return strings.Join(s.names, "\x00") }

// Subsets calls fn for every non-empty proper subset of s, in an arbitrary
// but deterministic order. It is intended for the small sets that occur as
// candidate keys.
func (s AttrSet) Subsets(fn func(AttrSet) bool) {
	n := len(s.names)
	if n == 0 || n > 20 {
		return
	}
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		var sub []string
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, s.names[i])
			}
		}
		if !fn(AttrSet{names: sub}) {
			return
		}
	}
}

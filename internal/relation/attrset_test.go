package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAttrSetDedupSort(t *testing.T) {
	s := NewAttrSet("b", "a", "b", "c", "a")
	if got := s.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Names() = %v", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len() = %d", s.Len())
	}
	if NewAttrSet().Len() != 0 || !NewAttrSet().IsEmpty() {
		t.Error("empty set not empty")
	}
}

func TestAttrSetContains(t *testing.T) {
	s := NewAttrSet("emp", "dep", "proj")
	for _, a := range []string{"emp", "dep", "proj"} {
		if !s.Contains(a) {
			t.Errorf("Contains(%q) = false", a)
		}
	}
	for _, a := range []string{"", "e", "empx", "zz"} {
		if s.Contains(a) {
			t.Errorf("Contains(%q) = true", a)
		}
	}
	if !s.ContainsAll(NewAttrSet("emp", "proj")) {
		t.Error("ContainsAll subset failed")
	}
	if s.ContainsAll(NewAttrSet("emp", "salary")) {
		t.Error("ContainsAll non-subset succeeded")
	}
	if !s.ContainsAll(NewAttrSet()) {
		t.Error("empty set is subset of everything")
	}
}

func TestAttrSetAlgebra(t *testing.T) {
	a := NewAttrSet("x", "y", "z")
	b := NewAttrSet("y", "w")
	if got := a.Union(b); !got.Equal(NewAttrSet("w", "x", "y", "z")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewAttrSet("x", "z")) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewAttrSet("y")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Add("q", "x"); !got.Equal(NewAttrSet("q", "x", "y", "z")) {
		t.Errorf("Add = %v", got)
	}
	// Receivers untouched.
	if !a.Equal(NewAttrSet("x", "y", "z")) || !b.Equal(NewAttrSet("w", "y")) {
		t.Error("operations mutated their receivers")
	}
}

func TestAttrSetString(t *testing.T) {
	if got := NewAttrSet("no").String(); got != "no" {
		t.Errorf("singleton String = %q", got)
	}
	if got := NewAttrSet("no", "date").String(); got != "{date, no}" {
		t.Errorf("pair String = %q", got)
	}
}

func TestAttrSetCompare(t *testing.T) {
	cases := []struct {
		a, b AttrSet
		want int
	}{
		{NewAttrSet("a"), NewAttrSet("a"), 0},
		{NewAttrSet("a"), NewAttrSet("b"), -1},
		{NewAttrSet("b"), NewAttrSet("a"), 1},
		{NewAttrSet("a"), NewAttrSet("a", "b"), -1},
		{NewAttrSet("z", "a"), NewAttrSet("b"), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSubsets(t *testing.T) {
	s := NewAttrSet("a", "b", "c")
	var got []string
	s.Subsets(func(sub AttrSet) bool {
		got = append(got, sub.String())
		return true
	})
	if len(got) != 6 { // 2^3 - 2 (skip empty and full)
		t.Errorf("got %d proper subsets: %v", len(got), got)
	}
	// Early stop.
	n := 0
	s.Subsets(func(AttrSet) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
	NewAttrSet().Subsets(func(AttrSet) bool {
		t.Error("empty set yielded a subset")
		return false
	})
}

type randSetPair struct{ A, B AttrSet }

// Generate implements quick.Generator.
func (randSetPair) Generate(r *rand.Rand, _ int) reflect.Value {
	gen := func() AttrSet {
		n := r.Intn(6)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + r.Intn(8)))
		}
		return NewAttrSet(names...)
	}
	return reflect.ValueOf(randSetPair{gen(), gen()})
}

func TestQuickSetLaws(t *testing.T) {
	f := func(p randSetPair) bool {
		u := p.A.Union(p.B)
		i := p.A.Intersect(p.B)
		d := p.A.Minus(p.B)
		// |A∪B| = |A| + |B| - |A∩B|
		if u.Len() != p.A.Len()+p.B.Len()-i.Len() {
			return false
		}
		// A = (A\B) ∪ (A∩B)
		if !d.Union(i).Equal(p.A) {
			return false
		}
		// Subset relations.
		return u.ContainsAll(p.A) && u.ContainsAll(p.B) &&
			p.A.ContainsAll(i) && p.B.ContainsAll(i) && p.A.ContainsAll(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareConsistent(t *testing.T) {
	f := func(p randSetPair) bool {
		c := p.A.Compare(p.B)
		if c == 0 != p.A.Equal(p.B) {
			return false
		}
		return c == -p.B.Compare(p.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

package relation

import (
	"strings"

	"dbre/internal/value"
)

// typeName maps a value kind onto the SQL spelling used when a catalog is
// rendered back to DDL.
func typeName(k value.Kind) string {
	switch k {
	case value.KindInt:
		return "INTEGER"
	case value.KindFloat:
		return "FLOAT"
	case value.KindBool:
		return "BOOLEAN"
	case value.KindDate:
		return "DATE"
	default:
		return "VARCHAR"
	}
}

// quoteIdent quotes identifiers that the lexer would not re-read as a
// plain identifier (spaces, quotes); hyphenated legacy names pass through.
func quoteIdent(name string) string {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_' || c == '-'
		if !ok {
			return `"` + name + `"`
		}
	}
	return name
}

// DDL renders the schema as a CREATE TABLE statement that parses back to
// an equivalent schema.
func (s *Schema) DDL() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE " + quoteIdent(s.Name) + " (\n")
	pk, hasPK := s.PrimaryKey()
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(",\n")
		}
		b.WriteString("    " + quoteIdent(a.Name) + " " + typeName(a.Type))
		if a.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	if hasPK {
		names := make([]string, 0, pk.Len())
		for _, n := range pk.Names() {
			names = append(names, quoteIdent(n))
		}
		b.WriteString(",\n    PRIMARY KEY (" + strings.Join(names, ", ") + ")")
	}
	for i, u := range s.Uniques {
		if hasPK && i == 0 {
			continue // rendered as PRIMARY KEY
		}
		names := make([]string, 0, u.Len())
		for _, n := range u.Names() {
			names = append(names, quoteIdent(n))
		}
		b.WriteString(",\n    UNIQUE (" + strings.Join(names, ", ") + ")")
	}
	b.WriteString("\n);")
	return b.String()
}

// DDL renders every schema of the catalog, in insertion order.
func (c *Catalog) DDL() string {
	parts := make([]string, 0, c.Len())
	for _, s := range c.Schemas() {
		parts = append(parts, s.DDL())
	}
	return strings.Join(parts, "\n")
}

package relation

import (
	"strings"
	"testing"

	"dbre/internal/value"
)

func TestSchemaDDL(t *testing.T) {
	s := MustSchema("Assignment", []Attribute{
		{Name: "emp", Type: value.KindInt},
		{Name: "dep", Type: value.KindInt},
		{Name: "proj", Type: value.KindInt},
		{Name: "date", Type: value.KindDate},
		{Name: "project-name", Type: value.KindString},
		{Name: "flag", Type: value.KindBool, NotNull: true},
		{Name: "pay", Type: value.KindFloat},
	}, NewAttrSet("emp", "dep", "proj"), NewAttrSet("date"))
	ddl := s.DDL()
	for _, want := range []string{
		"CREATE TABLE Assignment",
		"emp INTEGER",
		"date DATE",
		"project-name VARCHAR",
		"flag BOOLEAN NOT NULL",
		"pay FLOAT",
		"PRIMARY KEY (dep, emp, proj)",
		"UNIQUE (date)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL misses %q:\n%s", want, ddl)
		}
	}
}

func TestQuoteIdent(t *testing.T) {
	if quoteIdent("zip-code") != "zip-code" {
		t.Error("hyphen quoted unnecessarily")
	}
	if quoteIdent("has space") != `"has space"` {
		t.Error("space not quoted")
	}
	if quoteIdent("simple_1") != "simple_1" {
		t.Error("plain ident mangled")
	}
}

func TestCatalogDDL(t *testing.T) {
	c := MustCatalog(
		MustSchema("A", []Attribute{{Name: "x", Type: value.KindInt}}, NewAttrSet("x")),
		MustSchema("B", []Attribute{{Name: "y", Type: value.KindInt}}),
	)
	ddl := c.DDL()
	if strings.Count(ddl, "CREATE TABLE") != 2 {
		t.Errorf("DDL = %s", ddl)
	}
	if strings.Index(ddl, "CREATE TABLE A") > strings.Index(ddl, "CREATE TABLE B") {
		t.Error("order lost")
	}
}

// Package relation models relational schemas the way a legacy data
// dictionary exposes them: relation names, typed attributes, UNIQUE and NOT
// NULL declarations. From these it computes the two constraint sets the
// paper's method starts from — K (key attribute sets) and N (null-not-allowed
// attributes) — without any expert involvement (Section 4 of the paper).
package relation

import (
	"fmt"
	"sort"
	"strings"

	"dbre/internal/value"
)

// Attribute is a named, typed column with its dictionary-level NOT NULL flag.
type Attribute struct {
	Name    string
	Type    value.Kind
	NotNull bool // declared NOT NULL (a UNIQUE declaration implies it too)
}

// Schema describes one relation R_i(X_i) plus its declared constraints.
type Schema struct {
	Name  string
	Attrs []Attribute
	// Uniques holds the attribute sets declared UNIQUE (or PRIMARY KEY).
	// Per the paper these are exactly the key constraints in K.
	Uniques []AttrSet
}

// NewSchema builds a schema, validating attribute and constraint sanity.
func NewSchema(name string, attrs []Attribute, uniques ...AttrSet) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation %s: no attributes", name)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation %s: empty attribute name", name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("relation %s: duplicate attribute %q", name, a.Name)
		}
		seen[a.Name] = true
	}
	s := &Schema{Name: name, Attrs: attrs}
	for _, u := range uniques {
		if err := s.AddUnique(u); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(name string, attrs []Attribute, uniques ...AttrSet) *Schema {
	s, err := NewSchema(name, attrs, uniques...)
	if err != nil {
		panic(err)
	}
	return s
}

// AddUnique declares a UNIQUE constraint over the given attributes.
func (s *Schema) AddUnique(u AttrSet) error {
	if u.IsEmpty() {
		return fmt.Errorf("relation %s: empty UNIQUE constraint", s.Name)
	}
	all := s.AttrSet()
	if !all.ContainsAll(u) {
		return fmt.Errorf("relation %s: UNIQUE over unknown attributes %v", s.Name, u.Minus(all))
	}
	for _, prev := range s.Uniques {
		if prev.Equal(u) {
			return nil
		}
	}
	s.Uniques = append(s.Uniques, u)
	return nil
}

// AttrSet returns the full attribute set X_i of the relation.
func (s *Schema) AttrSet() AttrSet {
	names := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		names[i] = a.Name
	}
	return NewAttrSet(names...)
}

// Attr returns the attribute with the given name, if any.
func (s *Schema) Attr(name string) (Attribute, bool) {
	for _, a := range s.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// HasAttr reports whether the relation has an attribute with the given name.
func (s *Schema) HasAttr(name string) bool {
	_, ok := s.Attr(name)
	return ok
}

// IsKey reports whether u is one of the declared keys of the relation.
func (s *Schema) IsKey(u AttrSet) bool {
	for _, k := range s.Uniques {
		if k.Equal(u) {
			return true
		}
	}
	return false
}

// PrimaryKey returns the first declared key, which by convention is the
// primary one (the paper's algorithms use "the key K_i of R_i").
func (s *Schema) PrimaryKey() (AttrSet, bool) {
	if len(s.Uniques) == 0 {
		return AttrSet{}, false
	}
	return s.Uniques[0], true
}

// NotNullSet returns the set N restricted to this relation: attributes
// declared NOT NULL plus every attribute taking part in a UNIQUE constraint
// (standard SQL semantics adopted by the paper).
func (s *Schema) NotNullSet() AttrSet {
	var names []string
	for _, a := range s.Attrs {
		if a.NotNull {
			names = append(names, a.Name)
		}
	}
	set := NewAttrSet(names...)
	for _, u := range s.Uniques {
		set = set.Union(u)
	}
	return set
}

// DropAttrs returns a copy of the schema with the given attributes removed
// (used by the Restruct algorithm when splitting a relation along an FD).
// UNIQUE constraints mentioning a removed attribute are dropped.
func (s *Schema) DropAttrs(drop AttrSet) *Schema {
	out := &Schema{Name: s.Name}
	for _, a := range s.Attrs {
		if !drop.Contains(a.Name) {
			out.Attrs = append(out.Attrs, a)
		}
	}
	for _, u := range s.Uniques {
		if u.Intersect(drop).IsEmpty() {
			out.Uniques = append(out.Uniques, u)
		}
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{Name: s.Name, Attrs: append([]Attribute{}, s.Attrs...)}
	out.Uniques = append(out.Uniques, s.Uniques...)
	return out
}

// String renders the schema in the paper's style: keys underlined is not
// possible in plain text, so key attributes are marked with a leading '#'
// and NOT NULL non-key attributes with a trailing '*'.
func (s *Schema) String() string {
	pk, _ := s.PrimaryKey()
	nn := s.NotNullSet()
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		p := a.Name
		if pk.Contains(a.Name) {
			p = "#" + p
		} else if nn.Contains(a.Name) {
			p += "*"
		}
		parts[i] = p
	}
	return s.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Ref is a qualified attribute set "R.X" — a relation name plus an
// unordered set of its attributes. It is the currency of the sets K, LHS
// and H in the paper.
type Ref struct {
	Rel   string
	Attrs AttrSet
}

// NewRef builds a qualified attribute set.
func NewRef(rel string, attrs ...string) Ref {
	return Ref{Rel: rel, Attrs: NewAttrSet(attrs...)}
}

// Equal reports equality of relation name and attribute set.
func (r Ref) Equal(o Ref) bool { return r.Rel == o.Rel && r.Attrs.Equal(o.Attrs) }

// Compare orders refs by relation then attribute set.
func (r Ref) Compare(o Ref) int {
	if c := strings.Compare(r.Rel, o.Rel); c != 0 {
		return c
	}
	return r.Attrs.Compare(o.Attrs)
}

// String renders the ref in the paper's "R.{a,b}" notation.
func (r Ref) String() string {
	if r.Attrs.Len() == 1 {
		return r.Rel + "." + r.Attrs.Names()[0]
	}
	return r.Rel + "." + r.Attrs.String()
}

// Key returns a canonical map key.
func (r Ref) Key() string { return r.Rel + "\x01" + r.Attrs.Key() }

// SortRefs orders a slice of refs deterministically in place.
func SortRefs(refs []Ref) {
	sort.Slice(refs, func(i, j int) bool { return refs[i].Compare(refs[j]) < 0 })
}

// Catalog is an ordered collection of relation schemas — the set R (and,
// as the method progresses, R ∪ S).
type Catalog struct {
	byName map[string]*Schema
	order  []string
}

// NewCatalog builds a catalog over the given schemas.
func NewCatalog(schemas ...*Schema) (*Catalog, error) {
	c := &Catalog{byName: make(map[string]*Schema, len(schemas))}
	for _, s := range schemas {
		if err := c.Add(s); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// MustCatalog is NewCatalog that panics on error.
func MustCatalog(schemas ...*Schema) *Catalog {
	c, err := NewCatalog(schemas...)
	if err != nil {
		panic(err)
	}
	return c
}

// Add registers a schema; duplicate names are an error.
func (c *Catalog) Add(s *Schema) error {
	if _, dup := c.byName[s.Name]; dup {
		return fmt.Errorf("relation: duplicate relation %q", s.Name)
	}
	c.byName[s.Name] = s
	c.order = append(c.order, s.Name)
	return nil
}

// Replace swaps the schema registered under s.Name, keeping its position.
// It is an error if no schema with that name exists.
func (c *Catalog) Replace(s *Schema) error {
	if _, ok := c.byName[s.Name]; !ok {
		return fmt.Errorf("relation: cannot replace unknown relation %q", s.Name)
	}
	c.byName[s.Name] = s
	return nil
}

// Remove deletes the named relation from the catalog. The incremental
// re-validation path uses it to retract an NEI concept relation whose
// join was re-decided differently after a delta.
func (c *Catalog) Remove(name string) error {
	if _, ok := c.byName[name]; !ok {
		return fmt.Errorf("relation: cannot remove unknown relation %q", name)
	}
	delete(c.byName, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return nil
}

// Get returns the schema with the given name.
func (c *Catalog) Get(name string) (*Schema, bool) {
	s, ok := c.byName[name]
	return s, ok
}

// Has reports whether a relation with the given name exists.
func (c *Catalog) Has(name string) bool {
	_, ok := c.byName[name]
	return ok
}

// Names returns the relation names in insertion order.
func (c *Catalog) Names() []string { return append([]string{}, c.order...) }

// Len reports the number of relations.
func (c *Catalog) Len() int { return len(c.order) }

// Schemas returns the schemas in insertion order.
func (c *Catalog) Schemas() []*Schema {
	out := make([]*Schema, len(c.order))
	for i, n := range c.order {
		out[i] = c.byName[n]
	}
	return out
}

// Clone returns a deep copy of the catalog.
func (c *Catalog) Clone() *Catalog {
	out := &Catalog{byName: make(map[string]*Schema, len(c.byName))}
	for _, n := range c.order {
		out.byName[n] = c.byName[n].Clone()
		out.order = append(out.order, n)
	}
	return out
}

// Keys computes the paper's set K: one Ref per declared UNIQUE constraint,
// ordered deterministically.
func (c *Catalog) Keys() []Ref {
	var out []Ref
	for _, n := range c.order {
		for _, u := range c.byName[n].Uniques {
			out = append(out, Ref{Rel: n, Attrs: u})
		}
	}
	SortRefs(out)
	return out
}

// NotNulls computes the paper's set N: one Ref per null-not-allowed single
// attribute (declared NOT NULL or member of a UNIQUE constraint).
func (c *Catalog) NotNulls() []Ref {
	var out []Ref
	for _, n := range c.order {
		for _, a := range c.byName[n].NotNullSet().Names() {
			out = append(out, NewRef(n, a))
		}
	}
	SortRefs(out)
	return out
}

// String renders all schemas, one per line, in insertion order.
func (c *Catalog) String() string {
	var b strings.Builder
	for i, n := range c.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(c.byName[n].String())
	}
	return b.String()
}

package relation

import (
	"strings"
	"testing"

	"dbre/internal/value"
)

// paperCatalog builds the running example of Section 5:
//
//	Person(id, name, street, number, zip-code, state)    key {id}
//	HEmployee(no, date, salary)                          key {no,date}
//	Department(dep, emp, skill, location, proj)          key {dep}, location NOT NULL
//	Assignment(emp, dep, proj, date, project-name)       key {emp,dep,proj}
func paperCatalog(t *testing.T) *Catalog {
	t.Helper()
	person := MustSchema("Person", []Attribute{
		{Name: "id", Type: value.KindInt},
		{Name: "name", Type: value.KindString},
		{Name: "street", Type: value.KindString},
		{Name: "number", Type: value.KindInt},
		{Name: "zip-code", Type: value.KindString},
		{Name: "state", Type: value.KindString},
	}, NewAttrSet("id"))
	hemployee := MustSchema("HEmployee", []Attribute{
		{Name: "no", Type: value.KindInt},
		{Name: "date", Type: value.KindDate},
		{Name: "salary", Type: value.KindFloat},
	}, NewAttrSet("no", "date"))
	department := MustSchema("Department", []Attribute{
		{Name: "dep", Type: value.KindInt},
		{Name: "emp", Type: value.KindInt},
		{Name: "skill", Type: value.KindString},
		{Name: "location", Type: value.KindString, NotNull: true},
		{Name: "proj", Type: value.KindInt},
	}, NewAttrSet("dep"))
	assignment := MustSchema("Assignment", []Attribute{
		{Name: "emp", Type: value.KindInt},
		{Name: "dep", Type: value.KindInt},
		{Name: "proj", Type: value.KindInt},
		{Name: "date", Type: value.KindDate},
		{Name: "project-name", Type: value.KindString},
	}, NewAttrSet("emp", "dep", "proj"))
	return MustCatalog(person, hemployee, department, assignment)
}

func TestPaperExampleK(t *testing.T) {
	c := paperCatalog(t)
	got := c.Keys()
	want := []Ref{
		NewRef("Assignment", "emp", "dep", "proj"),
		NewRef("Department", "dep"),
		NewRef("HEmployee", "no", "date"),
		NewRef("Person", "id"),
	}
	if len(got) != len(want) {
		t.Fatalf("K has %d elements: %v", len(got), got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("K[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPaperExampleN(t *testing.T) {
	c := paperCatalog(t)
	got := c.NotNulls()
	want := map[string]bool{
		"Assignment.dep": true, "Assignment.emp": true, "Assignment.proj": true,
		"Department.dep": true, "Department.location": true,
		"HEmployee.no": true, "HEmployee.date": true,
		"Person.id": true,
	}
	if len(got) != len(want) {
		t.Fatalf("N has %d elements: %v", len(got), got)
	}
	for _, r := range got {
		if !want[r.String()] {
			t.Errorf("unexpected element of N: %v", r)
		}
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", []Attribute{{Name: "a"}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema("R", nil); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := NewSchema("R", []Attribute{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema("R", []Attribute{{Name: ""}}); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := NewSchema("R", []Attribute{{Name: "a"}}, NewAttrSet("b")); err == nil {
		t.Error("UNIQUE over unknown attribute accepted")
	}
	if _, err := NewSchema("R", []Attribute{{Name: "a"}}, NewAttrSet()); err == nil {
		t.Error("empty UNIQUE accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := MustSchema("R", []Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindString, NotNull: true},
		{Name: "c", Type: value.KindFloat},
	}, NewAttrSet("a"))
	if !s.AttrSet().Equal(NewAttrSet("a", "b", "c")) {
		t.Errorf("AttrSet = %v", s.AttrSet())
	}
	if a, ok := s.Attr("b"); !ok || a.Type != value.KindString {
		t.Errorf("Attr(b) = %v, %v", a, ok)
	}
	if _, ok := s.Attr("z"); ok {
		t.Error("Attr(z) found")
	}
	if !s.HasAttr("c") || s.HasAttr("z") {
		t.Error("HasAttr wrong")
	}
	if !s.IsKey(NewAttrSet("a")) || s.IsKey(NewAttrSet("b")) {
		t.Error("IsKey wrong")
	}
	pk, ok := s.PrimaryKey()
	if !ok || !pk.Equal(NewAttrSet("a")) {
		t.Errorf("PrimaryKey = %v, %v", pk, ok)
	}
	if !s.NotNullSet().Equal(NewAttrSet("a", "b")) {
		t.Errorf("NotNullSet = %v", s.NotNullSet())
	}
	// AddUnique dedup.
	if err := s.AddUnique(NewAttrSet("a")); err != nil {
		t.Errorf("AddUnique dup: %v", err)
	}
	if len(s.Uniques) != 1 {
		t.Errorf("duplicate UNIQUE added: %v", s.Uniques)
	}
}

func TestSchemaNoKey(t *testing.T) {
	s := MustSchema("R", []Attribute{{Name: "a"}})
	if _, ok := s.PrimaryKey(); ok {
		t.Error("keyless schema reported a primary key")
	}
	if !s.NotNullSet().IsEmpty() {
		t.Error("keyless, null-allowed schema has NOT NULLs")
	}
}

func TestDropAttrs(t *testing.T) {
	s := MustSchema("Department", []Attribute{
		{Name: "dep"}, {Name: "emp"}, {Name: "skill"},
		{Name: "location", NotNull: true}, {Name: "proj"},
	}, NewAttrSet("dep"))
	got := s.DropAttrs(NewAttrSet("skill", "proj"))
	if !got.AttrSet().Equal(NewAttrSet("dep", "emp", "location")) {
		t.Errorf("DropAttrs result = %v", got.AttrSet())
	}
	if !got.IsKey(NewAttrSet("dep")) {
		t.Error("key lost although untouched")
	}
	// Key dropped when it mentions a removed attribute.
	got2 := s.DropAttrs(NewAttrSet("dep"))
	if len(got2.Uniques) != 0 {
		t.Error("UNIQUE kept although its attribute was dropped")
	}
	// Original untouched.
	if len(s.Attrs) != 5 {
		t.Error("DropAttrs mutated the receiver")
	}
}

func TestSchemaString(t *testing.T) {
	c := paperCatalog(t)
	dep, _ := c.Get("Department")
	got := dep.String()
	if got != "Department(#dep, emp, skill, location*, proj)" {
		t.Errorf("String = %q", got)
	}
}

func TestRef(t *testing.T) {
	r := NewRef("HEmployee", "no")
	if r.String() != "HEmployee.no" {
		t.Errorf("String = %q", r.String())
	}
	r2 := NewRef("HEmployee", "no", "date")
	if r2.String() != "HEmployee.{date, no}" {
		t.Errorf("String = %q", r2.String())
	}
	if !r.Equal(NewRef("HEmployee", "no")) || r.Equal(r2) {
		t.Error("Equal wrong")
	}
	if r.Compare(r2) != -1 || r2.Compare(r) != 1 || r.Compare(r) != 0 {
		t.Error("Compare wrong")
	}
	if r.Key() == r2.Key() {
		t.Error("Key collision")
	}
}

func TestCatalog(t *testing.T) {
	c := paperCatalog(t)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Names(); strings.Join(got, ",") != "Person,HEmployee,Department,Assignment" {
		t.Errorf("Names = %v", got)
	}
	if _, ok := c.Get("Person"); !ok {
		t.Error("Get(Person) failed")
	}
	if c.Has("Nobody") {
		t.Error("Has(Nobody)")
	}
	dup := MustSchema("Person", []Attribute{{Name: "x"}})
	if err := c.Add(dup); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := c.Replace(dup); err != nil {
		t.Errorf("Replace: %v", err)
	}
	if got, _ := c.Get("Person"); !got.AttrSet().Equal(NewAttrSet("x")) {
		t.Error("Replace did not take effect")
	}
	if err := c.Replace(MustSchema("Ghost", []Attribute{{Name: "x"}})); err == nil {
		t.Error("Replace of unknown relation accepted")
	}
}

func TestCatalogClone(t *testing.T) {
	c := paperCatalog(t)
	cl := c.Clone()
	s, _ := cl.Get("Person")
	s.Attrs[0].Name = "mutated"
	orig, _ := c.Get("Person")
	if orig.Attrs[0].Name != "id" {
		t.Error("Clone shares attribute storage")
	}
	if err := cl.Add(MustSchema("New", []Attribute{{Name: "n"}})); err != nil {
		t.Fatal(err)
	}
	if c.Has("New") {
		t.Error("Clone shares order storage")
	}
}

func TestCatalogString(t *testing.T) {
	c := paperCatalog(t)
	s := c.String()
	if !strings.Contains(s, "Person(#id, name, street, number, zip-code, state)") {
		t.Errorf("catalog String missing Person: %s", s)
	}
	if strings.Count(s, "\n") != 3 {
		t.Errorf("catalog String line count: %q", s)
	}
}

// Partition-refinement kernel: the inner loop of every multi-attribute
// projection on the columnar engine. One refinement step intersects the
// current row → group-id vector with one column's code vector, assigning
// fresh dense ids in first-occurrence row order — exactly the numbering
// the row engine's composite-key hashing produces, so refined partitions
// stay bit-identical across engines and across kernel paths.
//
// Two remapping strategies implement the step:
//
//   - dense: when groups × dict fits a budget, the pair (group id, code)
//     is remapped through a direct-addressed []int32 table (sentinel −1).
//     One array read replaces a hash probe per row; the table is restored
//     to all −1 afterwards by walking the representative rows, so the
//     reset costs O(groups out), not O(groups × dict).
//   - map: the sparse fallback for large products, the pre-overhaul
//     map[int64]int32 probe. The map is cleared and reused across steps.
//
// Both strategies assign ids in first-occurrence order, so which one runs
// is unobservable in the results — the property/fuzz tests in
// refine_test.go and the engine differential harness pin this.
//
// Scratch pooling: a Refiner owns every reusable buffer of the kernel
// (the dense table, the remap map, two alternating intermediate group
// vectors, the representative-row list). Projection builds borrow a
// Refiner from a package-level free list, so steady-state refinement
// allocates only what the resulting Projection retains; the Step kernel
// itself is 0 allocs/op (pinned by internal/stats/alloc_test.go).
package table

import (
	"sync"
	"sync/atomic"
)

// refineDenseBudget caps the groups × dict product the dense strategy
// will direct-address; larger products fall back to the map. The default
// admits any product up to denseRowFactor × rows (a refinement step
// reads every row anyway, so scratch proportional to the row count is
// already paid for) plus a floor that keeps small tables always dense.
// It is atomic so tests and the B12 ablation can force either path.
var refineDenseBudget atomic.Int64

// denseRowFactor scales the row-proportional part of the default budget.
const denseRowFactor = 4

// denseFloor is the product always admitted regardless of table size.
const denseFloor = 1 << 14

func init() { refineDenseBudget.Store(-1) }

// SetRefineDenseBudget overrides the dense-remapping budget and returns
// the previous setting: 0 forces the map strategy (the pre-overhaul
// kernel), a positive value is an absolute groups × dict cap, and −1
// restores the default row-proportional budget. It exists for the B12
// ablation and the kernel-path equivalence tests; results are identical
// under any setting.
func SetRefineDenseBudget(budget int64) int64 {
	return refineDenseBudget.Swap(budget)
}

// denseOK reports whether a step with the given product may use the
// direct-addressed table for a table of n rows.
func denseOK(product int64, n int) bool {
	switch budget := refineDenseBudget.Load(); {
	case budget == 0:
		return false
	case budget > 0:
		return product <= budget
	default:
		return product <= denseRowFactor*int64(n)+denseFloor
	}
}

// Refiner holds the reusable scratch of the refinement kernel. The zero
// value is ready to use; a Refiner is not safe for concurrent use. Reuse
// one across steps (or borrow the package pool via projection builds) to
// refine without allocating.
type Refiner struct {
	dense []int32         // direct-addressed remap table, kept all −1
	remap map[int64]int32 // sparse fallback, cleared per step
	reps  []int32         // group id → first-occurrence row of the last Step
	bufA  []int32         // alternating intermediate group vectors
	bufB  []int32
	flip  bool
	// denseSteps/mapSteps count which strategy each Step chose, for the
	// kernel observability counters.
	denseSteps, mapSteps int64
}

// refinerPool is the package-level arena of Refiners. A mutex-guarded
// free list rather than a sync.Pool: Get and Put move pre-existing
// pointers, so the steady state allocates nothing at all.
var refinerPool struct {
	mu   sync.Mutex
	free []*Refiner
}

func acquireRefiner() *Refiner {
	refinerPool.mu.Lock()
	defer refinerPool.mu.Unlock()
	if n := len(refinerPool.free); n > 0 {
		r := refinerPool.free[n-1]
		refinerPool.free = refinerPool.free[:n-1]
		return r
	}
	return &Refiner{}
}

func releaseRefiner(r *Refiner) {
	r.denseSteps, r.mapSteps = 0, 0
	refinerPool.mu.Lock()
	refinerPool.free = append(refinerPool.free, r)
	refinerPool.mu.Unlock()
}

// Step refines the group vector g (groups distinct ids, −1 for NULL
// rows) by the code vector codes (dict distinct codes, −1 for NULL),
// writing the refined ids into dst and returning the refined group count
// together with the representative rows (refined id → first-occurrence
// row index). dst must have len(g) and must not alias g; the returned
// slice is the Refiner's scratch, valid only until the next Step.
func (r *Refiner) Step(dst, g, codes []int32, groups, dict int) (int, []int32) {
	n := len(g)
	_ = dst[:n]
	_ = codes[:n]
	r.reps = r.reps[:0]
	product := int64(groups) * int64(dict)
	if denseOK(product, n) {
		r.denseSteps++
		r.stepDense(dst, g, codes, int(product), dict)
	} else {
		r.mapSteps++
		r.stepMap(dst, g, codes, int64(dict))
	}
	return len(r.reps), r.reps
}

// stepDense is the direct-addressed strategy. The dense table is kept
// all −1 between uses: it is grown (and filled) lazily, and restored
// after the row pass by revisiting only the slots the representative
// rows touched.
func (r *Refiner) stepDense(dst, g, codes []int32, product, dict int) {
	if len(r.dense) < product {
		old := len(r.dense)
		r.dense = append(r.dense[:old:old], make([]int32, product-old)...)
		for i := old; i < product; i++ {
			r.dense[i] = -1
		}
	}
	dense := r.dense
	for i := range g {
		gi, ci := g[i], codes[i]
		if gi < 0 || ci < 0 {
			dst[i] = nullCode
			continue
		}
		k := int(gi)*dict + int(ci)
		id := dense[k]
		if id < 0 {
			id = int32(len(r.reps))
			dense[k] = id
			r.reps = append(r.reps, int32(i))
		}
		dst[i] = id
	}
	for _, ri := range r.reps {
		dense[int(g[ri])*dict+int(codes[ri])] = -1
	}
}

// stepMap is the sparse fallback: the pre-overhaul per-row hash probe,
// with the map cleared and reused across steps instead of re-made.
func (r *Refiner) stepMap(dst, g, codes []int32, dict int64) {
	if r.remap == nil {
		r.remap = make(map[int64]int32)
	} else {
		clear(r.remap)
	}
	remap := r.remap
	for i := range g {
		gi, ci := g[i], codes[i]
		if gi < 0 || ci < 0 {
			dst[i] = nullCode
			continue
		}
		k := int64(gi)*dict + int64(ci)
		id, ok := remap[k]
		if !ok {
			id = int32(len(remap))
			remap[k] = id
			r.reps = append(r.reps, int32(i))
		}
		dst[i] = id
	}
}

// scratchVec returns an intermediate group vector of length n, rotating
// between two owned buffers so the previous step's output (the current
// input) is never overwritten.
func (r *Refiner) scratchVec(n int) []int32 {
	buf := &r.bufA
	if r.flip {
		buf = &r.bufB
	}
	r.flip = !r.flip
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	return (*buf)[:n]
}

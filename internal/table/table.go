// Package table implements the in-memory storage engine: tables holding the
// database extension E, tuple-level constraint enforcement, and the
// counting, projection and equi-join primitives the elicitation algorithms
// query ("select count distinct ..." in the paper's notation).
//
// Two backing stores implement the same Table interface surface: the
// columnar, dictionary-encoded engine (the default; see columnar.go) and
// the original row store, kept as the reference implementation the
// differential harness compares against. All derived statistics —
// distinct counts, projection indexes, group ids — are defined to be
// byte-identical between the two.
package table

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dbre/internal/relation"
	"dbre/internal/value"
)

// Engine selects a table's backing store.
type Engine uint8

const (
	// EngineColumnar stores each attribute as an []int32 code vector
	// plus a per-column value dictionary. The default.
	EngineColumnar Engine = iota
	// EngineRow stores boxed rows ([]value.Value per tuple) — the
	// reference engine.
	EngineRow
)

// String names the engine.
func (e Engine) String() string {
	if e == EngineRow {
		return "row"
	}
	return "columnar"
}

// Row is one tuple; Row[i] is the value of the i-th schema attribute.
type Row []value.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row{}, r...) }

// Table is a mutable multiset of tuples conforming to a relation schema.
type Table struct {
	schema *relation.Schema
	cols   map[string]int // attribute name → column index
	// Exactly one of the two stores is active: rows for EngineRow,
	// columns (with nrows) for EngineColumnar.
	rows    []Row
	columns []column
	nrows   int
	// uniq holds one index per declared UNIQUE constraint, used to
	// enforce it on insert and by the batch appender's constraint
	// post-pass; see uniq.go for the two (row / columnar) layouts.
	uniq []*uniqIndex
	// keyScratch is the reused packing buffer for composite-constraint
	// probes; codeScratch holds the looked-up key codes of one row.
	keyScratch  []byte
	codeScratch []int32
	// version counts mutations. Every path that changes the extension
	// (Insert, InsertUnchecked) bumps it; derived statistics keyed by
	// (table, version) — the stats package's cache — use it as their
	// invalidation hook. ReplaceRelation installs a fresh *Table, so a
	// changed pointer equally signals staleness.
	version uint64
	// sketches holds the lazily enabled incremental sketch set (see
	// sketch.go); atomic because concurrent readers may race to enable
	// it. nil until EnableSketches, and always nil on the row engine.
	sketches atomic.Pointer[TableSketches]
	// lazy is non-nil on a table restored from a snapshot with deferred
	// column sections; internStale marks that the interning maps must be
	// rebuilt from the dictionaries before the first mutation. See
	// persist.go for both.
	lazy        *lazyCols
	internStale bool
	// epoch is the last published read snapshot: a frozen clone sharing
	// this table's immutable code/dictionary prefixes, republished at
	// every AppendBatch commit point and cleared by the per-row insert
	// paths. frozen marks such a clone; mutating it is a programming
	// error. See epoch.go.
	epoch  atomic.Pointer[Table]
	frozen bool
	// origin points a frozen clone back at the live table it was frozen
	// from; nil on live tables. Two frozen epochs with the same origin
	// are commit points of one append-only history, which is what lets
	// the stats cache delta-harvest a projection built over an older
	// epoch into a newer one (stats.getEntry) and lets a shared cache
	// recognize that a job's pinned view matches its own resolution of
	// the same relation.
	origin *Table
	// abytes memoizes ApproxBytes; valid only while abytesValid, kept
	// current by per-append delta accounting (see epoch.go, append.go).
	abytes      int64
	abytesValid bool
}

// New creates an empty table for the given schema on the default
// (columnar) engine.
func New(schema *relation.Schema) *Table { return NewWithEngine(schema, EngineColumnar) }

// NewWithEngine creates an empty table on the chosen backing store.
func NewWithEngine(schema *relation.Schema, engine Engine) *Table {
	t := &Table{
		schema: schema,
		cols:   make(map[string]int, len(schema.Attrs)),
	}
	for i, a := range schema.Attrs {
		t.cols[a.Name] = i
	}
	if engine == EngineColumnar {
		t.columns = make([]column, len(schema.Attrs))
	}
	for _, u := range schema.Uniques {
		idx := make([]int, 0, u.Len())
		for _, name := range u.Names() {
			idx = append(idx, t.cols[name])
		}
		t.uniq = append(t.uniq, newUniqIndex(idx, engine))
	}
	return t
}

// Engine reports the table's backing store.
func (t *Table) Engine() Engine {
	if t.columns != nil {
		return EngineColumnar
	}
	return EngineRow
}

// Schema returns the table's schema.
func (t *Table) Schema() *relation.Schema { return t.schema }

// Version reports the mutation counter. It changes on every Insert or
// InsertUnchecked; cached statistics derived from the extension are valid
// exactly as long as the (pointer, version) pair they were built against
// still describes the relation.
func (t *Table) Version() uint64 { return t.version }

// Len reports the number of tuples.
func (t *Table) Len() int {
	if t.columns != nil {
		return t.nrows
	}
	return len(t.rows)
}

// Row returns the i-th tuple. The caller must not modify it. On the
// columnar engine every call materializes a fresh row; iteration-heavy
// consumers should use ReadRow with a reused buffer instead.
func (t *Table) Row(i int) Row {
	if t.columns != nil {
		return t.ReadRow(i, make(Row, len(t.columns)))
	}
	return t.rows[i]
}

// ReadRow returns the i-th tuple, decoding into buf on the columnar
// engine (buf is grown when too small) and returning internal storage on
// the row engine. The returned row is only valid until the next ReadRow
// with the same buffer; the caller must not modify or retain it.
func (t *Table) ReadRow(i int, buf Row) Row {
	if t.columns == nil {
		return t.rows[i]
	}
	t.ensureAll()
	if len(buf) < len(t.columns) {
		buf = make(Row, len(t.columns))
	}
	buf = buf[:len(t.columns)]
	for c := range t.columns {
		col := &t.columns[c]
		if code := col.codes[i]; code >= 0 {
			buf[c] = col.dict[code]
		} else {
			buf[c] = value.Null
		}
	}
	return buf
}

// Value returns the single attribute value at (row i, column col) without
// materializing the tuple.
func (t *Table) Value(i, col int) value.Value {
	if t.columns != nil {
		t.ensureCol(col)
		c := &t.columns[col]
		if code := c.codes[i]; code >= 0 {
			return c.dict[code]
		}
		return value.Null
	}
	return t.rows[i][col]
}

// ColIndex returns the column index of the named attribute.
func (t *Table) ColIndex(name string) (int, bool) {
	i, ok := t.cols[name]
	return i, ok
}

// colIndexes resolves attribute names to column indexes, erroring on
// unknown names.
func (t *Table) colIndexes(attrs []string) ([]int, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		c, ok := t.cols[a]
		if !ok {
			return nil, fmt.Errorf("table %s: unknown attribute %q", t.schema.Name, a)
		}
		idx[i] = c
	}
	return idx, nil
}

// keyOf builds the composite grouping key of a free-standing row over the
// given columns. hasNull reports whether any participating value is NULL.
func keyOf(row Row, idx []int) (key string, hasNull bool) {
	var b strings.Builder
	for _, c := range idx {
		v := row[c]
		if v.IsNull() {
			hasNull = true
		}
		b.WriteString(v.Key())
		b.WriteByte(0x1f)
	}
	return b.String(), hasNull
}

// appendRowKey appends the composite grouping key of stored row i over
// the resolved columns to b, stopping early on the first NULL. Both
// engines produce identical bytes: the canonical value.AppendKey encoding
// plus a 0x1f terminator per attribute.
func (t *Table) appendRowKey(b []byte, i int, idx []int) (key []byte, hasNull bool) {
	if t.columns != nil {
		t.ensureCols(idx)
		for _, c := range idx {
			col := &t.columns[c]
			code := col.codes[i]
			if code < 0 {
				return b, true
			}
			b = col.dict[code].AppendKey(b)
			b = append(b, 0x1f)
		}
		return b, false
	}
	row := t.rows[i]
	for _, c := range idx {
		v := row[c]
		if v.IsNull() {
			return b, true
		}
		b = v.AppendKey(b)
		b = append(b, 0x1f)
	}
	return b, false
}

// Insert appends a tuple after checking arity, types, NOT NULL and UNIQUE
// constraints. Type checking coerces where value.Coerce allows it. On the
// columnar engine the row is dictionary-encoded only after every check
// passed, so failed inserts never pollute the column dictionaries (the
// single-attribute distinct count is the dictionary length).
func (t *Table) Insert(row Row) error {
	if len(row) != len(t.schema.Attrs) {
		return fmt.Errorf("table %s: arity %d, want %d", t.schema.Name, len(row), len(t.schema.Attrs))
	}
	t.ensureMutable()
	stored := make(Row, len(row))
	for i, a := range t.schema.Attrs {
		v := row[i]
		if !v.IsNull() && v.Kind() != a.Type {
			coerced, ok := value.Coerce(v, a.Type)
			if !ok {
				return fmt.Errorf("table %s: attribute %s: cannot store %v as %v",
					t.schema.Name, a.Name, v.Kind(), a.Type)
			}
			v = coerced
		}
		if v.IsNull() && a.NotNull {
			return fmt.Errorf("table %s: attribute %s is NOT NULL", t.schema.Name, a.Name)
		}
		stored[i] = v
	}
	if t.columns == nil {
		for ui, u := range t.uniq {
			key, hasNull := keyOf(stored, u.idx)
			if hasNull {
				// A UNIQUE declaration implies NOT NULL on its
				// attributes (the paper's SQL convention).
				return fmt.Errorf("table %s: NULL in key %v", t.schema.Name, t.schema.Uniques[ui])
			}
			if prev, dup := u.probeByKey(key); dup {
				return fmt.Errorf("table %s: UNIQUE(%v) violated by row %d", t.schema.Name, t.schema.Uniques[ui], prev)
			}
			u.registerByKey(key, t.Len())
		}
		t.rows = append(t.rows, stored)
		t.version++
		t.noteRowMutation()
		return nil
	}
	// Columnar engine: probe every constraint by dictionary code before
	// touching storage. A key value that was never interned cannot be a
	// duplicate of a stored row, so rejected rows do not pollute the
	// dictionaries (len(dict) is the single-attribute distinct count);
	// only the value-keyed phantom registrations of previously rejected
	// rows require a string probe, and only when any exist.
	for ui, u := range t.uniq {
		hasNull := false
		for _, c := range u.idx {
			if stored[c].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			t.registerPhantoms(stored, ui)
			return fmt.Errorf("table %s: NULL in key %v", t.schema.Name, t.schema.Uniques[ui])
		}
		codes := t.codeScratch[:0]
		allCoded := true
		for _, c := range u.idx {
			code, ok := t.columns[c].lookup(stored[c])
			if !ok {
				allCoded = false
				break
			}
			codes = append(codes, code)
		}
		t.codeScratch = codes
		if allCoded {
			if prev, dup := u.probeCodes(codes, &t.keyScratch); dup {
				t.registerPhantoms(stored, ui)
				return fmt.Errorf("table %s: UNIQUE(%v) violated by row %d", t.schema.Name, t.schema.Uniques[ui], prev)
			}
		}
		if len(u.byKey) > 0 {
			key, _ := keyOf(stored, u.idx)
			if prev, dup := u.probeByKey(key); dup {
				t.registerPhantoms(stored, ui)
				return fmt.Errorf("table %s: UNIQUE(%v) violated by row %d", t.schema.Name, t.schema.Uniques[ui], prev)
			}
		}
	}
	t.appendEncoded(stored)
	at := t.nrows - 1
	for _, u := range t.uniq {
		codes := t.codeScratch[:0]
		for _, c := range u.idx {
			codes = append(codes, t.columns[c].codes[at])
		}
		t.codeScratch = codes
		u.registerCodes(codes, at, &t.keyScratch)
	}
	t.version++
	t.noteRowMutation()
	return nil
}

// registerPhantoms records the value-keyed registrations Insert leaves
// behind for the constraints preceding the one a rejected row failed:
// the sequential semantics register constraint k before checking k+1,
// and later duplicates of those keys must still be detected. The
// recorded index is the one the row would have received.
func (t *Table) registerPhantoms(stored Row, upto int) {
	for ui := 0; ui < upto; ui++ {
		u := t.uniq[ui]
		key, _ := keyOf(stored, u.idx)
		u.registerByKey(key, t.Len())
	}
}

// MustInsert is Insert that panics on error; for tests and generators.
func (t *Table) MustInsert(row Row) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// InsertUnchecked appends a tuple without constraint enforcement. The
// corruption injector uses it to plant integrity violations (the paper
// explicitly copes with corrupted extensions). The row must match the
// schema arity.
func (t *Table) InsertUnchecked(row Row) {
	if t.columns != nil {
		t.ensureMutable()
		t.appendEncoded(row)
	} else {
		t.rows = append(t.rows, row.Clone())
	}
	t.version++
	t.noteRowMutation()
}

// noteRowMutation records a per-row extension change: the memoized
// ApproxBytes and the published epoch both describe a state that no
// longer exists.
func (t *Table) noteRowMutation() {
	t.abytesValid = false
	t.invalidateEpoch()
}

// Project returns the values of the given attributes for every tuple, in
// row order.
func (t *Table) Project(attrs []string) ([][]value.Value, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	n := t.Len()
	out := make([][]value.Value, n)
	for i := 0; i < n; i++ {
		vals := make([]value.Value, len(idx))
		for j, c := range idx {
			vals[j] = t.Value(i, c)
		}
		out[i] = vals
	}
	return out, nil
}

// CountNonNull counts the tuples with no NULL among the given attributes
// — the row base of uniqueness tests, FD supports and participation
// analysis. On the columnar engine a single attribute is answered from
// the column's running counter; multi-attribute counts scan only the code
// vectors.
func (t *Table) CountNonNull(attrs []string) (int, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return 0, err
	}
	if t.columns != nil {
		if len(idx) == 1 {
			return t.columns[idx[0]].nonNull, nil
		}
		t.ensureCols(idx)
		n := 0
	scan:
		for i := 0; i < t.nrows; i++ {
			for _, c := range idx {
				if t.columns[c].codes[i] < 0 {
					continue scan
				}
			}
			n++
		}
		return n, nil
	}
	n := 0
	for _, row := range t.rows {
		ok := true
		for _, c := range idx {
			if row[c].IsNull() {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// DistinctCount implements the paper's ‖r[X]‖: the number of distinct
// (NULL-free) value combinations over the given attributes, i.e. SQL
// "select count(distinct X) from R". Tuples with a NULL in X are skipped,
// matching COUNT(DISTINCT) semantics. On the columnar engine a single
// attribute is answered in O(1) — the dictionary length — with no
// allocation at all.
func (t *Table) DistinctCount(attrs []string) (int, error) {
	if t.columns != nil {
		if len(attrs) == 1 {
			if c, ok := t.cols[attrs[0]]; ok {
				// dictLen answers from restore metadata when the column
				// section is still deferred — the O(1) count never
				// forces a load.
				return t.dictLen(c), nil
			}
			return 0, fmt.Errorf("table %s: unknown attribute %q", t.schema.Name, attrs[0])
		}
		p, err := t.Projection(attrs)
		if err != nil {
			return 0, err
		}
		return p.Len(), nil
	}
	// Row-engine fast path for the overwhelmingly common case — a single
	// integer attribute (keys and foreign keys) — avoiding string keys.
	if len(attrs) == 1 {
		if set, ok := t.intSet(attrs[0]); ok {
			return len(set), nil
		}
	}
	set, err := t.DistinctSet(attrs)
	if err != nil {
		return 0, err
	}
	return len(set), nil
}

// intSet builds the distinct non-NULL int64 set of a single attribute; ok
// is false when the attribute is unknown or holds non-integer values.
func (t *Table) intSet(attr string) (map[int64]struct{}, bool) {
	col, ok := t.cols[attr]
	if !ok {
		return nil, false
	}
	if t.columns != nil {
		c := &t.columns[col]
		if c.nonInt {
			return nil, false
		}
		t.ensureCol(col)
		set := make(map[int64]struct{}, len(c.dict))
		for _, v := range c.dict {
			set[v.Int()] = struct{}{}
		}
		return set, true
	}
	set := make(map[int64]struct{})
	for _, row := range t.rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		if v.Kind() != value.KindInt {
			return nil, false
		}
		set[v.Int()] = struct{}{}
	}
	return set, true
}

// DistinctSet returns the set of distinct NULL-free composite keys over the
// given attributes, keyed canonically.
func (t *Table) DistinctSet(attrs []string) (map[string]struct{}, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	set := make(map[string]struct{})
	var scratch []byte
	n := t.Len()
	for i := 0; i < n; i++ {
		key, hasNull := t.appendRowKey(scratch[:0], i, idx)
		scratch = key
		if hasNull {
			continue
		}
		set[string(key)] = struct{}{}
	}
	return set, nil
}

// GroupRows builds the hashed projection index of the table over the
// given attributes: the row indexes grouped by distinct NULL-free
// composite key, keyed exactly like DistinctSet. Projection is the same
// index in the leaner form the stats cache memoizes; GroupRows remains
// for consumers that want the keyed map directly.
func (t *Table) GroupRows(attrs []string) (map[string][]int32, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	// The composite key is built into a reused scratch buffer and looked
	// up via the no-allocation string-conversion form; only the first
	// occurrence of each distinct key materializes a string. Group slices
	// live behind an id indirection so rows append without re-hashing the
	// key into the result map.
	index := make(map[string]int32)
	var slices [][]int32
	var scratch []byte
	n := t.Len()
	for i := 0; i < n; i++ {
		key, hasNull := t.appendRowKey(scratch[:0], i, idx)
		scratch = key
		if hasNull {
			continue
		}
		id, ok := index[string(key)]
		if !ok {
			id = int32(len(slices))
			index[string(key)] = id
			slices = append(slices, nil)
		}
		slices[id] = append(slices[id], int32(i))
	}
	groups := make(map[string][]int32, len(index))
	for k, id := range index {
		groups[k] = slices[id]
	}
	return groups, nil
}

// Projection is the hashed projection index in its reusable form: a
// dictionary of distinct NULL-free composite keys mapping to dense group
// ids, plus the row → group-id vector. It carries the same information
// as GroupRows without materializing per-group row slices, which is why
// the stats cache memoizes this representation — Len is the paper's
// ‖r[X]‖, the dictionary answers join and containment queries, and
// RowGroup drives the FD checks.
//
// On the columnar engine the dictionary is derived lazily (see
// columnar.go): counting consumers never pay for it. Group ids are
// bit-identical between engines — dense, in first-occurrence row order,
// -1 for rows with a NULL among the attributes.
type Projection struct {
	RowGroup []int32 // row index → group id, -1 for NULL rows
	NonNull  int     // rows with no NULL among the attributes

	groups int // number of distinct groups
	// denseSteps/mapSteps record how many refinement steps the build ran
	// through each remapping strategy (columnar engine only); the stats
	// cache mirrors them into the observability counters.
	denseSteps, mapSteps int64
	// Exactly one dictionary flavor is populated (possibly lazily):
	// ints for a single all-integer attribute, strs otherwise.
	strs map[string]int32
	ints map[int64]int32
	lazy *lazyDict // non-nil on the columnar engine
	// repsV caches the group → representative-row vector (see
	// delta.go Reps); repsOnce guards its concurrent derivation.
	repsOnce sync.Once
	repsV    []int32
}

// RefineSteps reports how many refinement steps this projection's build
// executed through the dense direct-addressed strategy and through the
// sparse map fallback. Zero for single-attribute and row-engine builds.
func (p *Projection) RefineSteps() (dense, mapped int64) {
	return p.denseSteps, p.mapSteps
}

// Len returns the number of distinct groups — the paper's ‖r[X]‖.
func (p *Projection) Len() int { return p.groups }

// IntDict returns the int64 → group-id dictionary, or nil when the
// projection is not int-flavored (multi-attribute, or a column holding
// non-integer values). The caller must treat it as read-only.
func (p *Projection) IntDict() map[int64]int32 {
	if p.lazy != nil && p.lazy.intFlavor {
		p.buildLazy()
	}
	return p.ints
}

// StrDict returns the canonical composite-key → group-id dictionary, or
// nil when the projection is int-flavored. The caller must treat it as
// read-only.
func (p *Projection) StrDict() map[string]int32 {
	if p.lazy != nil && !p.lazy.intFlavor {
		p.buildLazy()
	}
	return p.strs
}

// Projection builds the projection index over attrs. On the columnar
// engine this is pure integer arithmetic over the code vectors (see
// columnarProjection); on the row engine a single integer attribute is
// indexed by its raw int64 values and everything else uses the canonical
// composite-key encoding shared with DistinctSet and GroupRows.
func (t *Table) Projection(attrs []string) (*Projection, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	if t.columns != nil {
		return t.columnarProjection(idx), nil
	}
	p := &Projection{RowGroup: make([]int32, len(t.rows))}
	if len(idx) == 1 && t.intProjection(idx[0], p) {
		return p, nil
	}
	p.NonNull = 0 // a bailed-out int attempt may have counted some rows
	index := make(map[string]int32)
	var scratch []byte
	for i, row := range t.rows {
		scratch = scratch[:0]
		hasNull := false
		for _, c := range idx {
			v := row[c]
			if v.IsNull() {
				hasNull = true
				break
			}
			scratch = v.AppendKey(scratch)
			scratch = append(scratch, 0x1f)
		}
		if hasNull {
			p.RowGroup[i] = -1
			continue
		}
		id, ok := index[string(scratch)]
		if !ok {
			id = int32(len(index))
			index[string(scratch)] = id
		}
		p.RowGroup[i] = id
		p.NonNull++
	}
	p.strs = index
	p.groups = len(index)
	return p, nil
}

// ProjectionFrom builds the projection index over attrs starting from an
// already-built projection of the prefix attrs[:prefixLen], skipping the
// refinement steps the prefix already paid for. The prefix must have been
// built by this table over exactly attrs[:prefixLen]; callers are
// responsible for staleness (the stats cache validates the table pointer
// and version before reusing a prefix). As a backstop, a prefix whose row
// vector no longer matches the table length — every mutation grows it —
// is ignored and the projection is rebuilt from scratch. Group ids are
// bit-identical to a from-scratch Projection over attrs: refinement
// assigns ids in first-occurrence row order at every step, so the result
// depends only on the partition refined, not on where refinement started
// (pinned by TestProjectionFromPrefixEquivalence).
//
// On the row engine, prefix reuse does not apply and the call is
// equivalent to Projection(attrs).
func (t *Table) ProjectionFrom(prefix *Projection, prefixLen int, attrs []string) (*Projection, error) {
	if prefixLen < 1 || prefixLen > len(attrs) {
		return nil, fmt.Errorf("table %s: prefix length %d out of range for %v", t.schema.Name, prefixLen, attrs)
	}
	if t.columns == nil || prefix == nil || len(prefix.RowGroup) != t.nrows {
		return t.Projection(attrs)
	}
	if prefixLen == len(attrs) {
		return prefix, nil
	}
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	return t.refineFrom(prefix.RowGroup, prefix.groups, idx, prefixLen), nil
}

// intProjection fills p for a single integer column; false when a
// non-integer value forces the generic encoding.
func (t *Table) intProjection(col int, p *Projection) bool {
	index := make(map[int64]int32)
	for i, row := range t.rows {
		v := row[col]
		if v.IsNull() {
			p.RowGroup[i] = -1
			continue
		}
		if v.Kind() != value.KindInt {
			return false
		}
		id, ok := index[v.Int()]
		if !ok {
			id = int32(len(index))
			index[v.Int()] = id
		}
		p.RowGroup[i] = id
		p.NonNull++
	}
	p.ints = index
	p.groups = len(index)
	return true
}

// DistinctRows returns one representative projected row per distinct
// NULL-free combination, sorted deterministically.
func (t *Table) DistinctRows(attrs []string) ([][]value.Value, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{})
	var out [][]value.Value
	var scratch []byte
	n := t.Len()
	for i := 0; i < n; i++ {
		key, hasNull := t.appendRowKey(scratch[:0], i, idx)
		scratch = key
		if hasNull {
			continue
		}
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		vals := make([]value.Value, len(idx))
		for j, c := range idx {
			vals[j] = t.Value(i, c)
		}
		out = append(out, vals)
	}
	sort.Slice(out, func(i, j int) bool { return compareRows(out[i], out[j]) < 0 })
	return out, nil
}

func compareRows(a, b []value.Value) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// JoinDistinctCount implements ‖r_k[A_k] ⋈ r_l[A_l]‖: the number of
// distinct value combinations shared by both projections — the size of the
// intersection of the two distinct sets. This is exactly the N_kl quantity
// of the IND-Discovery algorithm.
func JoinDistinctCount(tk *Table, ak []string, tl *Table, al []string) (int, error) {
	if len(ak) != len(al) {
		return 0, fmt.Errorf("table: equi-join arity mismatch: %v vs %v", ak, al)
	}
	// Integer fast path mirroring DistinctCount's.
	if len(ak) == 1 {
		if ski, ok := tk.intSet(ak[0]); ok {
			if sli, ok := tl.intSet(al[0]); ok {
				if len(sli) < len(ski) {
					ski, sli = sli, ski
				}
				n := 0
				for v := range ski {
					if _, shared := sli[v]; shared {
						n++
					}
				}
				return n, nil
			}
		}
	}
	sk, err := tk.DistinctSet(ak)
	if err != nil {
		return 0, err
	}
	sl, err := tl.DistinctSet(al)
	if err != nil {
		return 0, err
	}
	if len(sl) < len(sk) {
		sk, sl = sl, sk
	}
	n := 0
	for key := range sk {
		if _, ok := sl[key]; ok {
			n++
		}
	}
	return n, nil
}

// ContainedIn reports whether the distinct projection of t over attrs is a
// subset of the distinct projection of other over otherAttrs, i.e. whether
// the inclusion dependency t[attrs] ≪ other[otherAttrs] is satisfied by the
// extension.
func ContainedIn(t *Table, attrs []string, other *Table, otherAttrs []string) (bool, error) {
	if len(attrs) != len(otherAttrs) {
		return false, fmt.Errorf("table: inclusion arity mismatch: %v vs %v", attrs, otherAttrs)
	}
	left, err := t.DistinctSet(attrs)
	if err != nil {
		return false, err
	}
	right, err := other.DistinctSet(otherAttrs)
	if err != nil {
		return false, err
	}
	for key := range left {
		if _, ok := right[key]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// EquiJoinRows materializes the equi-join of two tables on the given
// attribute lists and returns pairs of row indexes (hash join). It exists
// for the SQL executor and for tests; the elicitation algorithms only need
// the distinct counts.
func EquiJoinRows(tk *Table, ak []string, tl *Table, al []string) ([][2]int, error) {
	if len(ak) != len(al) {
		return nil, fmt.Errorf("table: equi-join arity mismatch: %v vs %v", ak, al)
	}
	idxK, err := tk.colIndexes(ak)
	if err != nil {
		return nil, err
	}
	idxL, err := tl.colIndexes(al)
	if err != nil {
		return nil, err
	}
	build := make(map[string][]int)
	var scratch []byte
	for i, n := 0, tl.Len(); i < n; i++ {
		key, hasNull := tl.appendRowKey(scratch[:0], i, idxL)
		scratch = key
		if hasNull {
			continue
		}
		build[string(key)] = append(build[string(key)], i)
	}
	var out [][2]int
	for i, n := 0, tk.Len(); i < n; i++ {
		key, hasNull := tk.appendRowKey(scratch[:0], i, idxK)
		scratch = key
		if hasNull {
			continue
		}
		for _, j := range build[string(key)] {
			out = append(out, [2]int{i, j})
		}
	}
	return out, nil
}

// Filter returns the indexes of rows for which pred is true. The row
// passed to pred is only valid for the duration of the call.
func (t *Table) Filter(pred func(Row) bool) []int {
	var out []int
	var buf Row
	n := t.Len()
	for i := 0; i < n; i++ {
		row := t.ReadRow(i, buf)
		if t.columns != nil {
			buf = row
		}
		if pred(row) {
			out = append(out, i)
		}
	}
	return out
}

// SortedRows returns all rows sorted by the full tuple order; it does not
// modify the table. Used for deterministic rendering.
func (t *Table) SortedRows() []Row {
	n := t.Len()
	out := make([]Row, n)
	if t.columns != nil {
		for i := 0; i < n; i++ {
			out[i] = t.ReadRow(i, nil)
		}
	} else {
		copy(out, t.rows)
	}
	sort.Slice(out, func(i, j int) bool { return compareRows(out[i], out[j]) < 0 })
	return out
}

// CheckUnique verifies a UNIQUE constraint over the current extension and
// returns the indexes of the first offending pair, if any. It is used to
// audit corrupted extensions.
func (t *Table) CheckUnique(u relation.AttrSet) (ok bool, rowA, rowB int, err error) {
	idx, err := t.colIndexes(u.Names())
	if err != nil {
		return false, 0, 0, err
	}
	n := t.Len()
	seen := make(map[string]int, n)
	var scratch []byte
	for i := 0; i < n; i++ {
		key, hasNull := t.appendRowKey(scratch[:0], i, idx)
		scratch = key
		if hasNull {
			continue
		}
		if prev, dup := seen[string(key)]; dup {
			return false, prev, i, nil
		}
		seen[string(key)] = i
	}
	return true, 0, 0, nil
}

// Database binds a catalog to its extension: one table per relation. It is
// the (R, E, ∅) triple the method takes as input.
type Database struct {
	catalog *relation.Catalog
	tables  map[string]*Table
	engine  Engine
}

// NewDatabase creates a database with an empty table per catalog relation
// on the default (columnar) engine.
func NewDatabase(catalog *relation.Catalog) *Database {
	return NewDatabaseWith(catalog, EngineColumnar)
}

// NewDatabaseWith is NewDatabase on the chosen engine; relations added
// later (AddRelation, ReplaceRelation) inherit it.
func NewDatabaseWith(catalog *relation.Catalog, engine Engine) *Database {
	db := &Database{catalog: catalog, tables: make(map[string]*Table, catalog.Len()), engine: engine}
	for _, s := range catalog.Schemas() {
		db.tables[s.Name] = NewWithEngine(s, engine)
	}
	return db
}

// Engine reports the backing store new relations are created on.
func (db *Database) Engine() Engine { return db.engine }

// Catalog returns the database's catalog.
func (db *Database) Catalog() *relation.Catalog { return db.catalog }

// Table returns the extension of the named relation.
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// MustTable is Table that panics when the relation is unknown.
func (db *Database) MustTable(name string) *Table {
	t, ok := db.tables[name]
	if !ok {
		panic(fmt.Sprintf("table: unknown relation %q", name))
	}
	return t
}

// AddRelation registers a new (empty) relation created during the method
// (the set S of Section 6.1).
func (db *Database) AddRelation(s *relation.Schema) error {
	if err := db.catalog.Add(s); err != nil {
		return err
	}
	db.tables[s.Name] = NewWithEngine(s, db.engine)
	return nil
}

// ReplaceRelation swaps the schema registered under s.Name (keeping its
// catalog position) and installs a fresh empty table on the database's
// engine — migrated rows are re-encoded by Insert as they arrive. The
// previous table is returned so callers can migrate its data; the
// Restruct algorithm uses this when splitting attributes out of a
// relation.
func (db *Database) ReplaceRelation(s *relation.Schema) (*Table, error) {
	old, ok := db.tables[s.Name]
	if !ok {
		return nil, fmt.Errorf("table: cannot replace unknown relation %q", s.Name)
	}
	if err := db.catalog.Replace(s); err != nil {
		return nil, err
	}
	db.tables[s.Name] = NewWithEngine(s, db.engine)
	return old, nil
}

// RemoveRelation drops a relation and its extension. Used by the
// incremental re-validation path to retract NEI concept relations whose
// join no longer supports them.
func (db *Database) RemoveRelation(name string) error {
	if err := db.catalog.Remove(name); err != nil {
		return err
	}
	delete(db.tables, name)
	return nil
}

// TotalRows reports the number of tuples across all relations.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += t.Len()
	}
	return n
}

// valueBytes estimates the resident size of one stored value: the boxed
// Value struct plus any string payload it pins.
func valueBytes(v value.Value) int64 {
	const structBytes = 40 // kind + i + f + string header, padded
	if v.Kind() == value.KindString {
		return structBytes + int64(len(v.Str()))
	}
	return structBytes
}

// ApproxBytes estimates the resident heap size of the table's extension:
// code vectors, dictionaries and interning maps on the columnar engine,
// boxed rows on the row engine. It is a sizing heuristic (within a small
// constant factor of live heap, ignoring allocator slack and slice spare
// capacity), intended for admission control — the job server's per-job
// memory ceiling — not for accounting.
func (t *Table) ApproxBytes() int64 {
	if t.abytesValid {
		return t.abytes
	}
	var b int64
	for i := range t.columns {
		// A deferred column section is costed from its restore metadata
		// so admission control does not force every column resident.
		if !t.colLoaded(i) {
			b += t.lazy.bytes[i]
			continue
		}
		b += columnBytes(&t.columns[i])
	}
	for _, r := range t.rows {
		b += 24 // slice header
		for _, v := range r {
			b += valueBytes(v)
		}
	}
	// Memoize on the columnar engine once every column is resident (the
	// batch appender then maintains the value by delta, see append.go).
	// Frozen epochs stay un-memoized: they may be scanned concurrently,
	// and writing the cache would race.
	if t.columns != nil && !t.frozen && (t.lazy == nil || t.lazy.pending.Load() == 0) {
		t.abytes, t.abytesValid = b, true
	}
	return b
}

// ApproxBytes sums ApproxBytes over every relation of the database.
func (db *Database) ApproxBytes() int64 {
	var b int64
	for _, t := range db.tables {
		b += t.ApproxBytes()
	}
	return b
}

// Package table implements the in-memory storage engine: tables holding the
// database extension E, tuple-level constraint enforcement, and the
// counting, projection and equi-join primitives the elicitation algorithms
// query ("select count distinct ..." in the paper's notation).
package table

import (
	"fmt"
	"sort"
	"strings"

	"dbre/internal/relation"
	"dbre/internal/value"
)

// Row is one tuple; Row[i] is the value of the i-th schema attribute.
type Row []value.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row{}, r...) }

// Table is a mutable multiset of tuples conforming to a relation schema.
type Table struct {
	schema *relation.Schema
	cols   map[string]int // attribute name → column index
	rows   []Row
	// uniq holds one hash index per declared UNIQUE constraint, used to
	// enforce it on insert; uniqIdx caches the column indexes of each
	// constraint so bulk loads avoid repeated name resolution.
	uniq    []map[string]int
	uniqIdx [][]int
	// version counts mutations. Every path that changes the extension
	// (Insert, InsertUnchecked) bumps it; derived statistics keyed by
	// (table, version) — the stats package's cache — use it as their
	// invalidation hook. ReplaceRelation installs a fresh *Table, so a
	// changed pointer equally signals staleness.
	version uint64
}

// New creates an empty table for the given schema.
func New(schema *relation.Schema) *Table {
	t := &Table{
		schema: schema,
		cols:   make(map[string]int, len(schema.Attrs)),
	}
	for i, a := range schema.Attrs {
		t.cols[a.Name] = i
	}
	for _, u := range schema.Uniques {
		t.uniq = append(t.uniq, make(map[string]int))
		idx := make([]int, 0, u.Len())
		for _, name := range u.Names() {
			idx = append(idx, t.cols[name])
		}
		t.uniqIdx = append(t.uniqIdx, idx)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *relation.Schema { return t.schema }

// Version reports the mutation counter. It changes on every Insert or
// InsertUnchecked; cached statistics derived from the extension are valid
// exactly as long as the (pointer, version) pair they were built against
// still describes the relation.
func (t *Table) Version() uint64 { return t.version }

// Len reports the number of tuples.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th tuple. The caller must not modify it.
func (t *Table) Row(i int) Row { return t.rows[i] }

// ColIndex returns the column index of the named attribute.
func (t *Table) ColIndex(name string) (int, bool) {
	i, ok := t.cols[name]
	return i, ok
}

// colIndexes resolves attribute names to column indexes, erroring on
// unknown names.
func (t *Table) colIndexes(attrs []string) ([]int, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		c, ok := t.cols[a]
		if !ok {
			return nil, fmt.Errorf("table %s: unknown attribute %q", t.schema.Name, a)
		}
		idx[i] = c
	}
	return idx, nil
}

// keyOf builds the composite grouping key of a row over the given columns.
// hasNull reports whether any of the participating values is NULL.
func keyOf(row Row, idx []int) (key string, hasNull bool) {
	var b strings.Builder
	for _, c := range idx {
		v := row[c]
		if v.IsNull() {
			hasNull = true
		}
		b.WriteString(v.Key())
		b.WriteByte(0x1f)
	}
	return b.String(), hasNull
}

// Insert appends a tuple after checking arity, types, NOT NULL and UNIQUE
// constraints. Type checking coerces where value.Coerce allows it.
func (t *Table) Insert(row Row) error {
	if len(row) != len(t.schema.Attrs) {
		return fmt.Errorf("table %s: arity %d, want %d", t.schema.Name, len(row), len(t.schema.Attrs))
	}
	stored := make(Row, len(row))
	for i, a := range t.schema.Attrs {
		v := row[i]
		if !v.IsNull() && v.Kind() != a.Type {
			coerced, ok := value.Coerce(v, a.Type)
			if !ok {
				return fmt.Errorf("table %s: attribute %s: cannot store %v as %v",
					t.schema.Name, a.Name, v.Kind(), a.Type)
			}
			v = coerced
		}
		if v.IsNull() && a.NotNull {
			return fmt.Errorf("table %s: attribute %s is NOT NULL", t.schema.Name, a.Name)
		}
		stored[i] = v
	}
	for ui, idx := range t.uniqIdx {
		key, hasNull := keyOf(stored, idx)
		if hasNull {
			// A UNIQUE declaration implies NOT NULL on its
			// attributes (the paper's SQL convention).
			return fmt.Errorf("table %s: NULL in key %v", t.schema.Name, t.schema.Uniques[ui])
		}
		if prev, dup := t.uniq[ui][key]; dup {
			return fmt.Errorf("table %s: UNIQUE(%v) violated by row %d", t.schema.Name, t.schema.Uniques[ui], prev)
		}
		t.uniq[ui][key] = len(t.rows)
	}
	t.rows = append(t.rows, stored)
	t.version++
	return nil
}

// MustInsert is Insert that panics on error; for tests and generators.
func (t *Table) MustInsert(row Row) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// InsertUnchecked appends a tuple without constraint enforcement. The
// corruption injector uses it to plant integrity violations (the paper
// explicitly copes with corrupted extensions).
func (t *Table) InsertUnchecked(row Row) {
	t.rows = append(t.rows, row.Clone())
	t.version++
}

// Project returns the values of the given attributes for every tuple, in
// row order.
func (t *Table) Project(attrs []string) ([][]value.Value, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	out := make([][]value.Value, len(t.rows))
	for i, row := range t.rows {
		vals := make([]value.Value, len(idx))
		for j, c := range idx {
			vals[j] = row[c]
		}
		out[i] = vals
	}
	return out, nil
}

// DistinctCount implements the paper's ‖r[X]‖: the number of distinct
// (NULL-free) value combinations over the given attributes, i.e. SQL
// "select count(distinct X) from R". Tuples with a NULL in X are skipped,
// matching COUNT(DISTINCT) semantics.
func (t *Table) DistinctCount(attrs []string) (int, error) {
	// Fast path for the overwhelmingly common case — a single integer
	// attribute (keys and foreign keys) — avoiding string-key allocation.
	if len(attrs) == 1 {
		if set, ok := t.intSet(attrs[0]); ok {
			return len(set), nil
		}
	}
	set, err := t.DistinctSet(attrs)
	if err != nil {
		return 0, err
	}
	return len(set), nil
}

// intSet builds the distinct non-NULL int64 set of a single attribute; ok
// is false when the attribute is unknown or holds non-integer values.
func (t *Table) intSet(attr string) (map[int64]struct{}, bool) {
	col, ok := t.cols[attr]
	if !ok {
		return nil, false
	}
	set := make(map[int64]struct{})
	for _, row := range t.rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		if v.Kind() != value.KindInt {
			return nil, false
		}
		set[v.Int()] = struct{}{}
	}
	return set, true
}

// DistinctSet returns the set of distinct NULL-free composite keys over the
// given attributes, keyed canonically.
func (t *Table) DistinctSet(attrs []string) (map[string]struct{}, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	set := make(map[string]struct{})
	for _, row := range t.rows {
		key, hasNull := keyOf(row, idx)
		if hasNull {
			continue
		}
		set[key] = struct{}{}
	}
	return set, nil
}

// GroupRows builds the hashed projection index of the table over the
// given attributes: the row indexes grouped by distinct NULL-free
// composite key, keyed exactly like DistinctSet. Projection is the same
// index in the leaner form the stats cache memoizes; GroupRows remains
// for consumers that want the keyed map directly.
func (t *Table) GroupRows(attrs []string) (map[string][]int32, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	// The composite key is built into a reused scratch buffer and looked
	// up via the no-allocation string-conversion form; only the first
	// occurrence of each distinct key materializes a string. Group slices
	// live behind an id indirection so rows append without re-hashing the
	// key into the result map.
	index := make(map[string]int32)
	var slices [][]int32
	var scratch []byte
	for i, row := range t.rows {
		scratch = scratch[:0]
		hasNull := false
		for _, c := range idx {
			v := row[c]
			if v.IsNull() {
				hasNull = true
				break
			}
			scratch = v.AppendKey(scratch)
			scratch = append(scratch, 0x1f)
		}
		if hasNull {
			continue
		}
		id, ok := index[string(scratch)]
		if !ok {
			id = int32(len(slices))
			index[string(scratch)] = id
			slices = append(slices, nil)
		}
		slices[id] = append(slices[id], int32(i))
	}
	groups := make(map[string][]int32, len(index))
	for k, id := range index {
		groups[k] = slices[id]
	}
	return groups, nil
}

// Projection is the hashed projection index in its reusable form: a
// dictionary of distinct NULL-free composite keys mapping to dense group
// ids, plus the row → group-id vector. It carries the same information
// as GroupRows without materializing per-group row slices, which is why
// the stats cache memoizes this representation — Len is the paper's
// ‖r[X]‖, the dictionary answers join and containment queries, and
// RowGroup drives the FD checks.
type Projection struct {
	Strs     map[string]int32 // distinct key → group id; nil when Ints is used
	Ints     map[int64]int32  // single-integer-attribute fast path; nil when Strs is used
	RowGroup []int32          // row index → group id, -1 for rows with a NULL among the attributes
	NonNull  int              // rows with no NULL among the attributes
}

// Len returns the number of distinct groups — the paper's ‖r[X]‖.
func (p *Projection) Len() int {
	if p.Ints != nil {
		return len(p.Ints)
	}
	return len(p.Strs)
}

// Projection builds the projection index over attrs. A single integer
// attribute — keys and foreign keys, the overwhelmingly common case — is
// indexed by its raw int64 values with no key-string allocation at all;
// everything else uses the canonical composite-key encoding shared with
// DistinctSet and GroupRows.
func (t *Table) Projection(attrs []string) (*Projection, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	p := &Projection{RowGroup: make([]int32, len(t.rows))}
	if len(idx) == 1 && t.intProjection(idx[0], p) {
		return p, nil
	}
	p.NonNull = 0 // a bailed-out int attempt may have counted some rows
	index := make(map[string]int32)
	var scratch []byte
	for i, row := range t.rows {
		scratch = scratch[:0]
		hasNull := false
		for _, c := range idx {
			v := row[c]
			if v.IsNull() {
				hasNull = true
				break
			}
			scratch = v.AppendKey(scratch)
			scratch = append(scratch, 0x1f)
		}
		if hasNull {
			p.RowGroup[i] = -1
			continue
		}
		id, ok := index[string(scratch)]
		if !ok {
			id = int32(len(index))
			index[string(scratch)] = id
		}
		p.RowGroup[i] = id
		p.NonNull++
	}
	p.Strs = index
	return p, nil
}

// intProjection fills p for a single integer column; false when a
// non-integer value forces the generic encoding.
func (t *Table) intProjection(col int, p *Projection) bool {
	index := make(map[int64]int32)
	for i, row := range t.rows {
		v := row[col]
		if v.IsNull() {
			p.RowGroup[i] = -1
			continue
		}
		if v.Kind() != value.KindInt {
			return false
		}
		id, ok := index[v.Int()]
		if !ok {
			id = int32(len(index))
			index[v.Int()] = id
		}
		p.RowGroup[i] = id
		p.NonNull++
	}
	p.Ints = index
	return true
}

// DistinctRows returns one representative projected row per distinct
// NULL-free combination, sorted deterministically.
func (t *Table) DistinctRows(attrs []string) ([][]value.Value, error) {
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{})
	var out [][]value.Value
	for _, row := range t.rows {
		key, hasNull := keyOf(row, idx)
		if hasNull {
			continue
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		vals := make([]value.Value, len(idx))
		for j, c := range idx {
			vals[j] = row[c]
		}
		out = append(out, vals)
	}
	sort.Slice(out, func(i, j int) bool { return compareRows(out[i], out[j]) < 0 })
	return out, nil
}

func compareRows(a, b []value.Value) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// JoinDistinctCount implements ‖r_k[A_k] ⋈ r_l[A_l]‖: the number of
// distinct value combinations shared by both projections — the size of the
// intersection of the two distinct sets. This is exactly the N_kl quantity
// of the IND-Discovery algorithm.
func JoinDistinctCount(tk *Table, ak []string, tl *Table, al []string) (int, error) {
	if len(ak) != len(al) {
		return 0, fmt.Errorf("table: equi-join arity mismatch: %v vs %v", ak, al)
	}
	// Integer fast path mirroring DistinctCount's.
	if len(ak) == 1 {
		if ski, ok := tk.intSet(ak[0]); ok {
			if sli, ok := tl.intSet(al[0]); ok {
				if len(sli) < len(ski) {
					ski, sli = sli, ski
				}
				n := 0
				for v := range ski {
					if _, shared := sli[v]; shared {
						n++
					}
				}
				return n, nil
			}
		}
	}
	sk, err := tk.DistinctSet(ak)
	if err != nil {
		return 0, err
	}
	sl, err := tl.DistinctSet(al)
	if err != nil {
		return 0, err
	}
	if len(sl) < len(sk) {
		sk, sl = sl, sk
	}
	n := 0
	for key := range sk {
		if _, ok := sl[key]; ok {
			n++
		}
	}
	return n, nil
}

// ContainedIn reports whether the distinct projection of t over attrs is a
// subset of the distinct projection of other over otherAttrs, i.e. whether
// the inclusion dependency t[attrs] ≪ other[otherAttrs] is satisfied by the
// extension. Counterexample returns one violating combination when not.
func ContainedIn(t *Table, attrs []string, other *Table, otherAttrs []string) (bool, error) {
	if len(attrs) != len(otherAttrs) {
		return false, fmt.Errorf("table: inclusion arity mismatch: %v vs %v", attrs, otherAttrs)
	}
	left, err := t.DistinctSet(attrs)
	if err != nil {
		return false, err
	}
	right, err := other.DistinctSet(otherAttrs)
	if err != nil {
		return false, err
	}
	for key := range left {
		if _, ok := right[key]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// EquiJoinRows materializes the equi-join of two tables on the given
// attribute lists and returns pairs of row indexes (hash join). It exists
// for the SQL executor and for tests; the elicitation algorithms only need
// the distinct counts.
func EquiJoinRows(tk *Table, ak []string, tl *Table, al []string) ([][2]int, error) {
	if len(ak) != len(al) {
		return nil, fmt.Errorf("table: equi-join arity mismatch: %v vs %v", ak, al)
	}
	idxK, err := tk.colIndexes(ak)
	if err != nil {
		return nil, err
	}
	idxL, err := tl.colIndexes(al)
	if err != nil {
		return nil, err
	}
	build := make(map[string][]int)
	for i, row := range tl.rows {
		key, hasNull := keyOf(row, idxL)
		if hasNull {
			continue
		}
		build[key] = append(build[key], i)
	}
	var out [][2]int
	for i, row := range tk.rows {
		key, hasNull := keyOf(row, idxK)
		if hasNull {
			continue
		}
		for _, j := range build[key] {
			out = append(out, [2]int{i, j})
		}
	}
	return out, nil
}

// Filter returns the indexes of rows for which pred is true.
func (t *Table) Filter(pred func(Row) bool) []int {
	var out []int
	for i, row := range t.rows {
		if pred(row) {
			out = append(out, i)
		}
	}
	return out
}

// SortedRows returns all rows sorted by the full tuple order; it does not
// modify the table. Used for deterministic rendering.
func (t *Table) SortedRows() []Row {
	out := make([]Row, len(t.rows))
	copy(out, t.rows)
	sort.Slice(out, func(i, j int) bool { return compareRows(out[i], out[j]) < 0 })
	return out
}

// CheckUnique verifies a UNIQUE constraint over the current extension and
// returns the indexes of the first offending pair, if any. It is used to
// audit corrupted extensions.
func (t *Table) CheckUnique(u relation.AttrSet) (ok bool, rowA, rowB int, err error) {
	idx, err := t.colIndexes(u.Names())
	if err != nil {
		return false, 0, 0, err
	}
	seen := make(map[string]int, len(t.rows))
	for i, row := range t.rows {
		key, hasNull := keyOf(row, idx)
		if hasNull {
			continue
		}
		if prev, dup := seen[key]; dup {
			return false, prev, i, nil
		}
		seen[key] = i
	}
	return true, 0, 0, nil
}

// Database binds a catalog to its extension: one table per relation. It is
// the (R, E, ∅) triple the method takes as input.
type Database struct {
	catalog *relation.Catalog
	tables  map[string]*Table
}

// NewDatabase creates a database with an empty table per catalog relation.
func NewDatabase(catalog *relation.Catalog) *Database {
	db := &Database{catalog: catalog, tables: make(map[string]*Table, catalog.Len())}
	for _, s := range catalog.Schemas() {
		db.tables[s.Name] = New(s)
	}
	return db
}

// Catalog returns the database's catalog.
func (db *Database) Catalog() *relation.Catalog { return db.catalog }

// Table returns the extension of the named relation.
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// MustTable is Table that panics when the relation is unknown.
func (db *Database) MustTable(name string) *Table {
	t, ok := db.tables[name]
	if !ok {
		panic(fmt.Sprintf("table: unknown relation %q", name))
	}
	return t
}

// AddRelation registers a new (empty) relation created during the method
// (the set S of Section 6.1).
func (db *Database) AddRelation(s *relation.Schema) error {
	if err := db.catalog.Add(s); err != nil {
		return err
	}
	db.tables[s.Name] = New(s)
	return nil
}

// ReplaceRelation swaps the schema registered under s.Name (keeping its
// catalog position) and installs a fresh empty table. The previous table is
// returned so callers can migrate its data — the Restruct algorithm uses
// this when splitting attributes out of a relation.
func (db *Database) ReplaceRelation(s *relation.Schema) (*Table, error) {
	old, ok := db.tables[s.Name]
	if !ok {
		return nil, fmt.Errorf("table: cannot replace unknown relation %q", s.Name)
	}
	if err := db.catalog.Replace(s); err != nil {
		return nil, err
	}
	db.tables[s.Name] = New(s)
	return old, nil
}

// TotalRows reports the number of tuples across all relations.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += t.Len()
	}
	return n
}

package table

import (
	"fmt"
	"sync"
	"testing"

	"dbre/internal/relation"
	"dbre/internal/sketch"
	"dbre/internal/value"
)

func epochSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema("E", []relation.Attribute{
		{Name: "id", Type: value.KindInt},
		{Name: "tag", Type: value.KindString},
	}, relation.NewAttrSet("id"))
}

// epochBatch appends rows [from, from+n) in one strict batch.
func epochBatch(t *testing.T, tab *Table, from, n int) {
	t.Helper()
	enc := NewChunkEncoder(tab)
	for i := from; i < from+n; i++ {
		if err := enc.AppendRow(Row{value.NewInt(int64(i)), value.NewString(fmt.Sprintf("t%d", i%7))}); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := tab.NewAppender().AppendBatch(enc, true); err != nil || v != 0 {
		t.Fatalf("batch [%d,%d): violations=%d err=%v", from, from+n, v, err)
	}
}

// rowSig renders row i of tab for cross-snapshot comparison.
func rowSig(tab *Table, i int) string { return fmt.Sprint(tab.Row(i)) }

// TestPinEpochImmutableUnderAppend: a pinned epoch is a stable view of
// its commit point — later batches grow the live table without moving a
// single row, value, or counter of the snapshot.
func TestPinEpochImmutableUnderAppend(t *testing.T) {
	tab := New(epochSchema(t))
	epochBatch(t, tab, 0, 100)
	pinned := tab.PinEpoch()
	if !pinned.Frozen() || pinned == tab {
		t.Fatal("PinEpoch on the columnar engine must return a frozen clone")
	}
	if pinned.PinEpoch() != pinned {
		t.Error("pinning a frozen epoch must return itself")
	}
	wantLen, wantVer := pinned.Len(), pinned.Version()
	wantRows := make([]string, wantLen)
	for i := range wantRows {
		wantRows[i] = rowSig(pinned, i)
	}

	epochBatch(t, tab, 100, 50)
	if pinned.Len() != wantLen || pinned.Version() != wantVer {
		t.Fatalf("pinned epoch moved: len %d→%d version %d→%d", wantLen, pinned.Len(), wantVer, pinned.Version())
	}
	for i, want := range wantRows {
		if got := rowSig(pinned, i); got != want {
			t.Fatalf("pinned row %d changed: %s → %s", i, want, got)
		}
	}
	if tab.Len() != 150 {
		t.Fatalf("live table len = %d, want 150", tab.Len())
	}
	if again := tab.PinEpoch(); again.Len() != 150 {
		t.Fatalf("re-pin after commit sees %d rows, want 150", again.Len())
	}
}

// TestPinEpochAfterRollback: a strict rollback republishes a consistent
// post-batch epoch (the kept prefix), and never disturbs epochs pinned
// at earlier commit points.
func TestPinEpochAfterRollback(t *testing.T) {
	tab := New(epochSchema(t))
	epochBatch(t, tab, 0, 40)
	pinned := tab.PinEpoch()

	enc := NewChunkEncoder(tab)
	for _, id := range []int64{40, 41, 17} { // 17 violates UNIQUE(id)
		if err := enc.AppendRow(Row{value.NewInt(id), value.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tab.NewAppender().AppendBatch(enc, true); err == nil {
		t.Fatal("want UNIQUE violation")
	}
	if tab.Len() != 42 {
		t.Fatalf("rows after rollback = %d, want 42", tab.Len())
	}
	if pinned.Len() != 40 {
		t.Fatalf("earlier epoch moved to %d rows", pinned.Len())
	}
	after := tab.PinEpoch()
	if after.Len() != 42 {
		t.Fatalf("post-rollback epoch has %d rows, want 42", after.Len())
	}
	for i := 0; i < 40; i++ {
		if rowSig(after, i) != rowSig(pinned, i) {
			t.Fatalf("row %d differs across epochs", i)
		}
	}
}

// TestPinEpochPerRowInvalidation: per-row inserts clear the published
// snapshot, so the next pin (quiescent, per the contract) rebuilds a
// fresh one instead of serving a stale commit point.
func TestPinEpochPerRowInvalidation(t *testing.T) {
	tab := New(epochSchema(t))
	epochBatch(t, tab, 0, 10)
	tab.PinEpoch()
	if err := tab.Insert(Row{value.NewInt(999), value.NewString("r")}); err != nil {
		t.Fatal(err)
	}
	if got := tab.PinEpoch().Len(); got != 11 {
		t.Fatalf("pin after per-row insert sees %d rows, want 11", got)
	}
}

// TestPinEpochRowEngine: no snapshots on the row engine — the pin is the
// table itself under the quiescent-reads contract.
func TestPinEpochRowEngine(t *testing.T) {
	tab := NewWithEngine(epochSchema(t), EngineRow)
	epochBatch(t, tab, 0, 5)
	if tab.PinEpoch() != tab {
		t.Error("row engine PinEpoch must return the table itself")
	}
}

// TestDatabasePinEpochIsolated: the database-level pin clones the
// catalog, so schema additions against the snapshot never leak into the
// live database, and vice versa.
func TestDatabasePinEpochIsolated(t *testing.T) {
	db := NewDatabase(relation.MustCatalog(epochSchema(t)))
	epochBatch(t, db.MustTable("E"), 0, 30)
	e0 := db.Epoch()
	pinned := db.PinEpoch()
	if pinned.Epoch() != e0 {
		t.Fatalf("pinned epoch %d, want %d", pinned.Epoch(), e0)
	}
	if err := pinned.AddRelation(relation.MustSchema("side", []relation.Attribute{{Name: "x", Type: value.KindInt}})); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("side"); ok {
		t.Error("schema added to the pinned view leaked into the live database")
	}
	epochBatch(t, db.MustTable("E"), 30, 10)
	if db.Epoch() <= e0 {
		t.Error("live epoch did not advance with the append")
	}
	if got := pinned.MustTable("E").Len(); got != 30 {
		t.Errorf("pinned table grew to %d rows", got)
	}
}

// TestPinEpochConcurrentAppend is the -race gate for MVCC-lite reads: a
// writer streams strict batches — some committing, some rolling back on
// a planted UNIQUE violation — while readers continuously pin epochs and
// verify each snapshot is internally consistent: the length is a commit
// point (never mid-batch), every row's id equals its index (rollbacks
// leave no torn suffix), and the snapshot holds still across re-reads.
// Sketches ride along, and after the writer quiesces their catch-up
// state must equal a from-scratch rebuild — the mid-discovery-rollback
// watermark scenario.
func TestPinEpochConcurrentAppend(t *testing.T) {
	tab := New(epochSchema(t))
	if tab.EnableSketches(sketch.Config{}) == nil {
		t.Fatal("EnableSketches returned nil")
	}
	const batch, batches = 50, 40
	epochBatch(t, tab, 0, batch)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(stop)
		next := batch
		for b := 1; b < batches; b++ {
			if b%5 == 0 {
				// A doomed batch: the planted duplicate id rolls the
				// whole thing back, codes and dictionaries truncated
				// under the readers' feet — published caps must hold.
				enc := NewChunkEncoder(tab)
				for i := 0; i < batch-1; i++ {
					enc.AppendRow(Row{value.NewInt(int64(next + i)), value.NewString(fmt.Sprintf("t%d", (next+i)%7))})
				}
				enc.AppendRow(Row{value.NewInt(0), value.NewString("dup")})
				if _, err := tab.NewAppender().AppendBatch(enc, true); err == nil {
					t.Error("doomed batch committed")
					return
				}
				// The kept prefix is the new commit point; account for it.
				next += batch - 1
				continue
			}
			enc := NewChunkEncoder(tab)
			for i := 0; i < batch; i++ {
				enc.AppendRow(Row{value.NewInt(int64(next + i)), value.NewString(fmt.Sprintf("t%d", (next+i)%7))})
			}
			if v, err := tab.NewAppender().AppendBatch(enc, true); err != nil || v != 0 {
				t.Errorf("batch %d: violations=%d err=%v", b, v, err)
				return
			}
			next += batch
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // reader
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := tab.PinEpoch()
				n := p.Len()
				if !p.Frozen() || n < batch {
					t.Errorf("pin: frozen=%v len=%d", p.Frozen(), n)
					return
				}
				for _, i := range []int{0, n / 2, n - 1} {
					if got := p.Row(i)[0].Int(); got != int64(i) {
						t.Errorf("pinned row %d has id %d (len %d)", i, got, n)
						return
					}
				}
				if again := p.Len(); again != n {
					t.Errorf("snapshot moved: %d → %d", n, again)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Watermark catch-up after the rollbacks: sketch state is a pure
	// function of the surviving extension.
	ref := New(epochSchema(t))
	ref.EnableSketches(sketch.Config{})
	for i := 0; i < tab.Len(); i++ {
		if err := ref.Insert(tab.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, attr := range []string{"id", "tag"} {
		got := fmt.Sprint(sketchSig(t, tab, attr).Hashes())
		want := fmt.Sprint(sketchSig(t, ref, attr).Hashes())
		if got != want {
			t.Errorf("%s: sketch diverged after rollbacks:\ngot  %s\nwant %s", attr, got, want)
		}
	}
}

// TestApproxBytesDeltaAccounting: the memoized footprint kept current by
// per-append delta accounting must equal the full recomputed scan after
// committed batches, rolled-back batches, and per-row inserts.
func TestApproxBytesDeltaAccounting(t *testing.T) {
	tab := New(epochSchema(t))
	recomputed := func() int64 {
		tab.abytesValid = false
		return tab.ApproxBytes()
	}
	if tab.ApproxBytes() != 0 {
		t.Fatalf("empty table = %d bytes", tab.ApproxBytes())
	}
	epochBatch(t, tab, 0, 80)
	if got, want := tab.ApproxBytes(), recomputed(); got != want {
		t.Fatalf("after first batch: memo %d, scan %d", got, want)
	}
	// Memoized now; the next batch must keep it current via the delta.
	epochBatch(t, tab, 80, 40)
	if got, want := tab.ApproxBytes(), recomputed(); got != want {
		t.Fatalf("after second batch: memo %d, scan %d", got, want)
	}
	// A rolled-back batch lands on the kept prefix; the delta accounts
	// the surviving region only.
	tab.ApproxBytes() // re-memoize after recomputed() invalidated
	enc := NewChunkEncoder(tab)
	for _, id := range []int64{200, 201, 3} { // 3 violates UNIQUE(id)
		if err := enc.AppendRow(Row{value.NewInt(id), value.NewString("roll")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tab.NewAppender().AppendBatch(enc, true); err == nil {
		t.Fatal("want UNIQUE violation")
	}
	if got, want := tab.ApproxBytes(), recomputed(); got != want {
		t.Fatalf("after rollback: memo %d, scan %d", got, want)
	}
	// Per-row inserts invalidate; the next call re-scans and re-memoizes.
	tab.ApproxBytes()
	tab.MustInsert(Row{value.NewInt(999), value.NewString("solo")})
	if got, want := tab.ApproxBytes(), recomputed(); got != want {
		t.Fatalf("after per-row insert: memo %d, scan %d", got, want)
	}
}

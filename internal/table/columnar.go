// Columnar, dictionary-encoded storage: each attribute holds an []int32
// code vector plus a per-column dictionary of the distinct values that
// actually occur, with NULL as the reserved code -1. Codes are dense and
// assigned in first-occurrence order, which makes the code vector of a
// column *itself* the row → group-id vector of its single-attribute
// projection, and lets multi-attribute projections be composed by
// TANE-style partition refinement (pairwise group-id products) instead of
// re-hashing boxed rows. The row engine remains available (EngineRow) as
// the reference implementation the differential harness compares against.
package table

import (
	"sync"

	"dbre/internal/value"
)

// nullCode is the reserved dictionary code for the SQL NULL marker.
const nullCode int32 = -1

// column is one dictionary-encoded attribute vector. The dictionary is
// append-only: dict[i] never changes once assigned, so derived statistics
// may safely retain prefixes of it across later inserts (staleness is the
// cache's problem, not a memory-safety one).
type column struct {
	codes []int32
	dict  []value.Value
	// ints interns KindInt payloads and keys interns the canonical
	// Key() encoding of every other kind. Two maps because the common
	// case — integer keys and foreign keys — must not pay per-value
	// string construction, and because interning by value.Value directly
	// would diverge from Key() semantics on NaN (Go map equality treats
	// NaN ≠ NaN; Key() compares Float64bits).
	ints map[int64]int32
	keys map[string]int32
	// keyBuf is scratch for probing keys without materializing a string:
	// lookups go through the compiler's alloc-free map[string([]byte)]
	// form, so only genuinely new dictionary entries pay a key allocation.
	keyBuf  []byte
	nonNull int
	// nonInt records that some non-NULL value is not KindInt; it decides
	// whether the column's projection is int-flavored, mirroring the row
	// engine's intProjection bail-out exactly.
	nonInt bool
}

// encode interns v and returns its dictionary code. Callers must only
// encode values that are actually stored: the single-attribute distinct
// count is len(dict), which requires every dictionary entry to be
// referenced by at least one row.
func (c *column) encode(v value.Value) int32 {
	if v.IsNull() {
		return nullCode
	}
	c.nonNull++
	if v.Kind() != value.KindInt {
		c.nonInt = true
	}
	return c.intern(v)
}

// intern ensures v (non-NULL) is in the dictionary and returns its code,
// without touching the nonNull/nonInt row counters — those are driven by
// the rows that reference the entry, which the batch appender merges
// separately from the dictionaries.
func (c *column) intern(v value.Value) int32 {
	if v.Kind() == value.KindInt {
		if id, ok := c.ints[v.Int()]; ok {
			return id
		}
		if c.ints == nil {
			c.ints = make(map[int64]int32)
		}
		id := int32(len(c.dict))
		c.ints[v.Int()] = id
		c.dict = append(c.dict, v)
		return id
	}
	c.keyBuf = v.AppendKey(c.keyBuf[:0])
	if id, ok := c.keys[string(c.keyBuf)]; ok {
		return id
	}
	if c.keys == nil {
		c.keys = make(map[string]int32)
	}
	id := int32(len(c.dict))
	c.keys[string(c.keyBuf)] = id
	c.dict = append(c.dict, v)
	return id
}

// lookup probes the dictionary for v (non-NULL) without interning.
func (c *column) lookup(v value.Value) (int32, bool) {
	if v.Kind() == value.KindInt {
		id, ok := c.ints[v.Int()]
		return id, ok
	}
	c.keyBuf = v.AppendKey(c.keyBuf[:0])
	id, ok := c.keys[string(c.keyBuf)]
	return id, ok
}

// ColumnCodes returns the dictionary-code vector of column c (codes[i]
// is row i's code, nullCode for NULL) on the columnar engine, nil on the
// row engine. The caller must treat it as read-only; it is only valid
// until the next mutation.
func (t *Table) ColumnCodes(c int) []int32 {
	if t.columns == nil {
		return nil
	}
	t.ensureCol(c)
	return t.columns[c].codes[:t.nrows:t.nrows]
}

// ColumnDict returns the value dictionary of column c (entry i is the
// value behind code i, in first-occurrence row order) on the columnar
// engine, nil on the row engine. The caller must treat it as read-only.
func (t *Table) ColumnDict(c int) []value.Value {
	if t.columns == nil {
		return nil
	}
	t.ensureCol(c)
	d := t.columns[c].dict
	return d[:len(d):len(d)]
}

// appendEncoded stores one validated row in columnar form.
func (t *Table) appendEncoded(row Row) {
	for i := range t.columns {
		c := &t.columns[i]
		c.codes = append(c.codes, c.encode(row[i]))
	}
	t.nrows++
}

// columnarProjection builds the projection index over the resolved
// columns without touching a single boxed value.
//
// Single attribute: the code vector already is the row → group-id vector
// (codes are dense in first-occurrence order, exactly how the row engine
// assigns group ids), so the projection shares it and the group count is
// the dictionary length.
//
// Multiple attributes: partition refinement. Starting from the first
// column's codes, each further column refines the grouping through the
// Refiner kernel (refine.go) — remapping the pair (current group id,
// column code), the pairwise group-id product, to a fresh dense id in
// first-occurrence order, via either the dense direct-addressed table or
// the sparse map. By induction the final ids equal the row engine's
// composite-key ids bit for bit: two rows share a refined id iff they
// share the prefix tuple, and new ids are assigned in the same
// first-occurrence row order.
func (t *Table) columnarProjection(idx []int) *Projection {
	t.ensureCols(idx)
	n := t.nrows
	if len(idx) == 1 {
		c := &t.columns[idx[0]]
		return &Projection{
			RowGroup: c.codes[:n:n],
			NonNull:  c.nonNull,
			groups:   len(c.dict),
			lazy:     &lazyDict{tab: t, idx: idx, dictLen: len(c.dict), intFlavor: !c.nonInt},
		}
	}
	g := t.columns[idx[0]].codes[:n:n]
	return t.refineFrom(g, len(t.columns[idx[0]].dict), idx, 1)
}

// refineFrom refines the group vector g (groups distinct ids, taken over
// idx[:from]) by the columns idx[from:] and packages the result. g is
// read, never written: intermediate steps rotate through the borrowed
// Refiner's scratch vectors and only the final step writes the vector the
// Projection retains, so steady-state refinement allocates just the
// retained result.
func (t *Table) refineFrom(g []int32, groups int, idx []int, from int) *Projection {
	t.ensureCols(idx[from:])
	n := t.nrows
	r := acquireRefiner()
	var reps []int32
	for step := from; step < len(idx); step++ {
		c := &t.columns[idx[step]]
		var dst []int32
		if step == len(idx)-1 {
			dst = make([]int32, n)
		} else {
			dst = r.scratchVec(n)
		}
		groups, reps = r.Step(dst, g, c.codes[:n:n], groups, len(c.dict))
		g = dst
	}
	repsOut := make([]int32, len(reps))
	copy(repsOut, reps)
	nonNull := 0
	for _, id := range g {
		if id >= 0 {
			nonNull++
		}
	}
	p := &Projection{
		RowGroup:   g,
		NonNull:    nonNull,
		groups:     groups,
		denseSteps: r.denseSteps,
		mapSteps:   r.mapSteps,
		lazy:       &lazyDict{tab: t, idx: idx, reps: repsOut},
	}
	releaseRefiner(r)
	return p
}

// lazyDict defers the projection's key dictionary until a consumer
// actually needs one (membership tests, join intersections): the counting
// phases only read Len/RowGroup/NonNull, and building the dictionary from
// one representative row per group costs O(groups × attrs) instead of the
// row engine's O(rows × attrs). Snapshots (dictLen, reps) index into
// append-only storage, so the build stays correct even if the table has
// grown since the projection was taken.
type lazyDict struct {
	once      sync.Once
	tab       *Table
	idx       []int
	dictLen   int     // single-attribute: dictionary length at build time
	reps      []int32 // multi-attribute: group id → representative row
	intFlavor bool
}

func (p *Projection) buildLazy() {
	l := p.lazy
	l.once.Do(func() {
		if len(l.idx) == 1 {
			c := &l.tab.columns[l.idx[0]]
			if l.intFlavor {
				m := make(map[int64]int32, l.dictLen)
				for id := 0; id < l.dictLen; id++ {
					m[c.dict[id].Int()] = int32(id)
				}
				p.ints = m
				return
			}
			m := make(map[string]int32, l.dictLen)
			var scratch []byte
			for id := 0; id < l.dictLen; id++ {
				scratch = c.dict[id].AppendKey(scratch[:0])
				scratch = append(scratch, 0x1f)
				m[string(scratch)] = int32(id)
			}
			p.strs = m
			return
		}
		m := make(map[string]int32, len(l.reps))
		var scratch []byte
		for gid, ri := range l.reps {
			scratch = scratch[:0]
			for _, ci := range l.idx {
				c := &l.tab.columns[ci]
				scratch = c.dict[c.codes[ri]].AppendKey(scratch)
				scratch = append(scratch, 0x1f)
			}
			m[string(scratch)] = int32(gid)
		}
		p.strs = m
	})
}

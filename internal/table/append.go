// Batched ingest. A ChunkEncoder parses one chunk of input rows into
// chunk-local dictionary codes — independently of every other chunk, so
// loaders can fan chunks across workers — and Appender.AppendBatch
// merges finished chunks into the table: chunk dictionaries are interned
// into the global ones once per *distinct* value and a dense remap table
// translates the chunk's codes, so the per-row hot path is an int32 array
// lookup instead of a value.Key hash probe. Constraint enforcement
// (NOT NULL, UNIQUE) runs as a columnar post-pass over the merged rows,
// by dictionary code (see uniq.go), and reproduces Table.Insert's
// sequential semantics exactly: identical violation counts and phantom
// registrations in non-strict loads, identical first-error state in
// strict ones. The differential harness in internal/csvio pins this
// equivalence down to the bytes of the engine state.
package table

import (
	"fmt"

	"dbre/internal/relation"
	"dbre/internal/value"
)

// BatchError is the error AppendBatch returns in strict mode: the
// Insert-equivalent constraint error plus the batch-relative index of
// the violating row, so loaders can report exact line numbers.
type BatchError struct {
	Row int   // batch-relative index of the violating row
	Err error // the error Insert would have returned for it
}

func (e *BatchError) Error() string { return e.Err.Error() }
func (e *BatchError) Unwrap() error { return e.Err }

// AppendStats accumulates ingest observability counters across the
// batches an Appender has merged.
type AppendStats struct {
	Batches    int64 // AppendBatch calls
	Rows       int64 // rows offered across all batches
	Remaps     int64 // chunk-dictionary entries remapped to global codes
	Violations int64 // constraint violations (non-strict mode)
}

// ChunkEncoder accumulates rows of one chunk in columnar form with a
// chunk-local dictionary per attribute. Not safe for concurrent use;
// each worker owns one. Rows are coerced to the schema's attribute
// types exactly as Insert does; NOT NULL and UNIQUE checking is
// deferred to AppendBatch's post-pass.
type ChunkEncoder struct {
	schema  *relation.Schema
	cols    []column
	n       int
	scratch Row
}

// NewChunkEncoder creates an encoder for t's schema.
func NewChunkEncoder(t *Table) *ChunkEncoder {
	return &ChunkEncoder{
		schema:  t.schema,
		cols:    make([]column, len(t.schema.Attrs)),
		scratch: make(Row, len(t.schema.Attrs)),
	}
}

// Len reports the number of rows encoded so far.
func (e *ChunkEncoder) Len() int { return e.n }

// Reset discards the encoded rows and dictionaries so the encoder can
// be reused for another chunk of the same relation. Capacity is
// retained: codes, dictionaries and intern maps keep their backing
// storage, so a worker cycling through chunks stops allocating once its
// encoder has seen a full-sized chunk.
func (e *ChunkEncoder) Reset() {
	for i := range e.cols {
		c := &e.cols[i]
		c.codes = c.codes[:0]
		c.dict = c.dict[:0]
		clear(c.ints)
		clear(c.keys)
		c.nonNull = 0
		c.nonInt = false
	}
	e.n = 0
}

// AppendRow encodes one row into the chunk. It fails only on arity or
// type errors (with Insert's error text); the row is not stored then.
func (e *ChunkEncoder) AppendRow(row Row) error {
	if len(row) != len(e.schema.Attrs) {
		return fmt.Errorf("table %s: arity %d, want %d", e.schema.Name, len(row), len(e.schema.Attrs))
	}
	for i, a := range e.schema.Attrs {
		v := row[i]
		if !v.IsNull() && v.Kind() != a.Type {
			coerced, ok := value.Coerce(v, a.Type)
			if !ok {
				return fmt.Errorf("table %s: attribute %s: cannot store %v as %v",
					e.schema.Name, a.Name, v.Kind(), a.Type)
			}
			v = coerced
		}
		e.scratch[i] = v
	}
	for i := range e.cols {
		c := &e.cols[i]
		c.codes = append(c.codes, c.encode(e.scratch[i]))
	}
	e.n++
	return nil
}

// row decodes the i-th encoded row into buf.
func (e *ChunkEncoder) row(i int, buf Row) Row {
	for ci := range e.cols {
		c := &e.cols[ci]
		if code := c.codes[i]; code >= 0 {
			buf[ci] = c.dict[code]
		} else {
			buf[ci] = value.Null
		}
	}
	return buf
}

// Appender merges ChunkEncoder batches into one table. It owns the
// reusable merge scratch (remap table, violation flags, key buffers), so
// steady-state appends allocate only for genuinely new dictionary
// entries and storage growth. Not safe for concurrent use; batches of a
// parallel load are committed by one goroutine in chunk order, which is
// what makes the merged state independent of worker scheduling.
type Appender struct {
	t     *Table
	stats AppendStats

	remap   []int32
	viol    []bool
	codeBuf []int32
	keyBuf  []byte
	// Pre-merge column state, captured per batch for the strict-mode
	// rollback: dictionary length, nonNull count and nonInt flag.
	baseDict    []int
	baseNonNull []int
	baseNonInt  []bool
	baseVersion uint64
}

// NewAppender creates an appender for t.
func (t *Table) NewAppender() *Appender { return &Appender{t: t} }

// Stats returns the accumulated ingest counters.
func (a *Appender) Stats() AppendStats { return a.stats }

// AppendBatch merges an encoded chunk into the table.
//
// strict=false mirrors the tolerant loader: rows violating NOT NULL or
// UNIQUE are retained anyway and counted, exactly as a per-row
// Insert-then-InsertUnchecked load would leave them.
//
// strict=true mirrors Insert's all-or-nothing-per-row semantics: on the
// first violating row the batch is rolled back to just before it (rows
// preceding it in the batch stay, as if inserted one by one) and a
// *BatchError carrying the Insert-equivalent error is returned.
//
// On the row engine the batch degrades to per-row Insert — the row
// engine is the reference implementation and keeps its original code
// path bit for bit.
func (a *Appender) AppendBatch(b *ChunkEncoder, strict bool) (violations int, err error) {
	t := a.t
	if b.schema != t.schema {
		return 0, fmt.Errorf("table %s: batch encoded for schema %s", t.schema.Name, b.schema.Name)
	}
	a.stats.Batches++
	a.stats.Rows += int64(b.n)
	if t.columns == nil {
		return a.appendRows(b, strict)
	}
	if b.n == 0 {
		return 0, nil
	}
	t.ensureMutable()
	base := t.nrows
	nc := len(t.columns)
	a.baseDict = resizeInts(a.baseDict, nc)
	a.baseNonNull = resizeInts(a.baseNonNull, nc)
	if cap(a.baseNonInt) < nc {
		a.baseNonInt = make([]bool, nc)
	}
	a.baseNonInt = a.baseNonInt[:nc]
	a.baseVersion = t.version
	// Merge: intern each chunk-dictionary entry once (chunk dictionaries
	// are in first-occurrence order, and batches commit in row order, so
	// the global dictionaries keep exact first-occurrence order), then
	// translate the chunk's codes through the dense remap table.
	for ci := range t.columns {
		gc := &t.columns[ci]
		cc := &b.cols[ci]
		a.baseDict[ci] = len(gc.dict)
		a.baseNonNull[ci] = gc.nonNull
		a.baseNonInt[ci] = gc.nonInt
		remap := a.remap
		if cap(remap) < len(cc.dict) {
			remap = make([]int32, len(cc.dict))
			a.remap = remap
		}
		remap = remap[:len(cc.dict)]
		for li, v := range cc.dict {
			remap[li] = gc.intern(v)
		}
		a.stats.Remaps += int64(len(cc.dict))
		gc.codes = append(gc.codes, cc.codes...)
		out := gc.codes[base:]
		for i, code := range out {
			if code >= 0 {
				out[i] = remap[code]
			}
		}
		gc.nonNull += cc.nonNull
		if cc.nonInt {
			gc.nonInt = true
		}
	}
	t.nrows += b.n
	t.version += uint64(b.n)
	violations, err = a.checkAppended(base, strict)
	// Sketch maintenance rides the batch: one catch-up pass over the new
	// dictionary entries and rows. Runs after the constraint post-pass so
	// a strict-mode rollback is observed as a shrink (rebuild), keeping
	// the sketches a pure function of the surviving extension.
	if s := t.sketches.Load(); s != nil {
		s.CatchUp()
	}
	// The batch lands on a consistent commit state whether it committed
	// fully or rolled back: account its ApproxBytes delta and publish it
	// as the new read epoch.
	a.noteAppendBytes(base)
	t.publishEpoch()
	return violations, err
}

// noteAppendBytes applies the batch's ApproxBytes delta once the
// constraint post-pass settled the surviving region: appended codes plus
// the surviving new dictionary entries (value payload + interning-map
// overhead, mirroring columnBytes). A no-op while the memo is invalid —
// the next full ApproxBytes scan re-validates it.
func (a *Appender) noteAppendBytes(base int) {
	t := a.t
	if !t.abytesValid {
		return
	}
	d := int64(t.nrows-base) * int64(len(t.columns)) * 4
	for ci := range t.columns {
		for _, v := range t.columns[ci].dict[a.baseDict[ci]:] {
			d += valueBytes(v) + 16
		}
	}
	t.abytes += d
}

// appendRows is the row-engine fallback: the reference per-row path.
func (a *Appender) appendRows(b *ChunkEncoder, strict bool) (int, error) {
	t := a.t
	buf := make(Row, len(b.cols))
	violations := 0
	for i := 0; i < b.n; i++ {
		row := b.row(i, buf)
		if err := t.Insert(row); err != nil {
			if strict {
				return violations, &BatchError{Row: i, Err: err}
			}
			violations++
			a.stats.Violations++
			t.InsertUnchecked(row)
		}
	}
	return violations, nil
}

// checkAppended is the columnar constraint post-pass over the merged
// rows [base, t.nrows): NOT NULL column scans first, then the UNIQUE
// probes row-major in row order — registration order matters, because a
// row's key must be visible to the duplicates that follow it.
func (a *Appender) checkAppended(base int, strict bool) (int, error) {
	t := a.t
	nb := t.nrows - base
	viol := a.viol
	if cap(viol) < nb {
		viol = make([]bool, nb)
	}
	viol = viol[:nb]
	for i := range viol {
		viol[i] = false
	}
	a.viol = viol
	for ci := range t.schema.Attrs {
		if !t.schema.Attrs[ci].NotNull {
			continue
		}
		codes := t.columns[ci].codes[base:]
		for i, code := range codes {
			if code < 0 {
				viol[i] = true
			}
		}
	}
	violations := 0
	for i := 0; i < nb; i++ {
		row := base + i
		if viol[i] {
			// A NOT NULL failure precedes every key check, so the row
			// leaves no registrations — exactly Insert's early return.
			if strict {
				err := a.notNullError(row)
				a.rollback(base, row, 0)
				return violations, &BatchError{Row: i, Err: err}
			}
			violations++
			a.stats.Violations++
			continue
		}
		failedAt := -1
		var ferr error
		for ui, u := range t.uniq {
			codes, nullKey := a.gatherCodes(u, row)
			if nullKey {
				ferr = fmt.Errorf("table %s: NULL in key %v", t.schema.Name, t.schema.Uniques[ui])
				failedAt = ui
				break
			}
			if prev, dup := u.probeCodes(codes, &a.keyBuf); dup {
				ferr = fmt.Errorf("table %s: UNIQUE(%v) violated by row %d", t.schema.Name, t.schema.Uniques[ui], prev)
				failedAt = ui
				break
			}
			if len(u.byKey) > 0 {
				key, _ := t.appendRowKey(a.keyBuf[:0], row, u.idx)
				a.keyBuf = key
				if prev, dup := u.probeByKey(string(key)); dup {
					ferr = fmt.Errorf("table %s: UNIQUE(%v) violated by row %d", t.schema.Name, t.schema.Uniques[ui], prev)
					failedAt = ui
					break
				}
			}
		}
		if failedAt < 0 {
			for _, u := range t.uniq {
				codes, _ := a.gatherCodes(u, row)
				u.registerCodes(codes, row, &a.keyBuf)
			}
			continue
		}
		if strict {
			a.rollback(base, row, failedAt)
			return violations, &BatchError{Row: i, Err: ferr}
		}
		// Non-strict: the violating row is retained (the tolerant loader
		// would have InsertUnchecked'd it), and the constraints preceding
		// the failed one keep their registrations at this row's index.
		// Insert records those as value-keyed phantoms (the row was
		// rejected before storage there), so register byKey — not by code
		// — to keep the engine state bit-identical to the per-row path.
		for uj := 0; uj < failedAt; uj++ {
			u := t.uniq[uj]
			key, _ := t.appendRowKey(a.keyBuf[:0], row, u.idx)
			a.keyBuf = key
			u.registerByKey(string(key), row)
		}
		violations++
		a.stats.Violations++
	}
	return violations, nil
}

// gatherCodes collects row's codes over the constraint's columns.
func (a *Appender) gatherCodes(u *uniqIndex, row int) (codes []int32, nullKey bool) {
	t := a.t
	codes = a.codeBuf[:0]
	for _, c := range u.idx {
		code := t.columns[c].codes[row]
		if code < 0 {
			a.codeBuf = codes
			return codes, true
		}
		codes = append(codes, code)
	}
	a.codeBuf = codes
	return codes, false
}

// notNullError rebuilds Insert's error for the first NOT NULL attribute
// (in schema order) the row violates.
func (a *Appender) notNullError(row int) error {
	t := a.t
	for ci, attr := range t.schema.Attrs {
		if attr.NotNull && t.columns[ci].codes[row] < 0 {
			return fmt.Errorf("table %s: attribute %s is NOT NULL", t.schema.Name, attr.Name)
		}
	}
	return fmt.Errorf("table %s: internal: no NOT NULL violation at row %d", t.schema.Name, row)
}

// rollback undoes the merged batch's tail for strict mode, leaving the
// table exactly as row-by-row Inserts up to (excluding) row keep would
// have: codes and row count truncated, dictionary entries first occurring
// at dropped rows removed (they form a dictionary suffix, because codes
// are assigned in first-occurrence order), nonNull/nonInt and version
// recomputed over the kept region. The violating row's partial
// registrations (constraints before phantomUpto) are converted to
// value-keyed phantoms first, while the dictionaries still cover them —
// Insert leaves the same registrations behind for a rejected row.
func (a *Appender) rollback(base, keep, phantomUpto int) {
	t := a.t
	for uj := 0; uj < phantomUpto; uj++ {
		u := t.uniq[uj]
		key, _ := t.appendRowKey(a.keyBuf[:0], keep, u.idx)
		a.keyBuf = key
		u.registerByKey(string(key), keep)
	}
	for ci := range t.columns {
		c := &t.columns[ci]
		keepDict := a.baseDict[ci]
		for _, code := range c.codes[base:keep] {
			if int(code) >= keepDict {
				keepDict = int(code) + 1
			}
		}
		for _, v := range c.dict[keepDict:] {
			if v.Kind() == value.KindInt {
				delete(c.ints, v.Int())
			} else {
				delete(c.keys, v.Key())
			}
		}
		c.dict = c.dict[:keepDict]
		nn := a.baseNonNull[ci]
		for _, code := range c.codes[base:keep] {
			if code >= 0 {
				nn++
			}
		}
		c.nonNull = nn
		nonInt := a.baseNonInt[ci]
		for _, v := range c.dict[a.baseDict[ci]:] {
			if v.Kind() != value.KindInt {
				nonInt = true
			}
		}
		c.nonInt = nonInt
		c.codes = c.codes[:keep]
	}
	// Dense key indexes may have grown past the surviving dictionary;
	// the trimmed tail holds no registrations (only rows before keep
	// registered, and their codes survive), so truncation keeps future
	// growth consistent.
	for _, u := range t.uniq {
		if len(u.idx) == 1 {
			if dl := len(t.columns[u.idx[0]].dict); len(u.dense) > dl {
				u.dense = u.dense[:dl]
			}
		}
	}
	t.nrows = keep
	t.version = a.baseVersion + uint64(keep-base)
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

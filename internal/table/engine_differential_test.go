package table

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dbre/internal/relation"
	"dbre/internal/value"
)

// This file differentially tests the two storage engines: every primitive
// the pipelines consume is run against a row-backed and a columnar table
// fed the identical insert sequence, and the results must agree exactly —
// including the bit-level RowGroup vectors, whose first-occurrence-dense
// numbering both engines are documented to share.

// randValue draws from a pool designed to stress the key encodings: NaN
// (map equality differs from Key equality), strings containing the 0x1f
// separator, strings that spell kind tags ("s…", "i…"), empty strings,
// NULLs, and plain ints/floats/bools/dates with small domains so groups
// actually collide.
func randValue(rng *rand.Rand, kind value.Kind) value.Value {
	if rng.Intn(5) == 0 {
		return value.Null
	}
	switch kind {
	case value.KindInt:
		return value.NewInt(int64(rng.Intn(7) - 3))
	case value.KindFloat:
		switch rng.Intn(5) {
		case 0:
			return value.NewFloat(math.NaN())
		case 1:
			return value.NewFloat(0)
		default:
			return value.NewFloat(float64(rng.Intn(4)))
		}
	case value.KindBool:
		return value.NewBool(rng.Intn(2) == 0)
	case value.KindDate:
		return value.NewDate(1996, 2, 1+rng.Intn(4))
	default:
		pool := []string{
			"", "a", "b", "ab", "\x1f", "a\x1f", "\x1fa", "a\x1fb",
			"s", "s1", "i7", "f0", "n", "t", "d19960201",
		}
		return value.NewString(pool[rng.Intn(len(pool))])
	}
}

// buildPair grows a row-engine and a columnar table through the same
// randomized sequence of Insert and InsertUnchecked calls (including
// inserts that fail constraint checks on both engines alike).
func buildPair(t *testing.T, rng *rand.Rand, s *relation.Schema, nrows int) (*Table, *Table) {
	t.Helper()
	row := NewWithEngine(s, EngineRow)
	col := NewWithEngine(s, EngineColumnar)
	kinds := make([]value.Kind, len(s.Attrs))
	for i, a := range s.Attrs {
		kinds[i] = a.Type
	}
	for n := 0; n < nrows; n++ {
		r := make(Row, len(kinds))
		for i, k := range kinds {
			r[i] = randValue(rng, k)
		}
		if rng.Intn(8) == 0 {
			// Unchecked inserts bypass coercion, so columns can hold
			// mixed kinds — the int fast paths must bail identically.
			r[rng.Intn(len(r))] = randValue(rng, value.KindString)
			row.InsertUnchecked(r)
			col.InsertUnchecked(r)
			continue
		}
		errRow := row.Insert(r)
		errCol := col.Insert(r)
		if (errRow == nil) != (errCol == nil) {
			t.Fatalf("insert %d: engines disagree on error: row=%v columnar=%v", n, errRow, errCol)
		}
	}
	return row, col
}

// attrSubsets enumerates a few deterministic attribute lists to probe.
func attrSubsets(s *relation.Schema) [][]string {
	names := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		names[i] = a.Name
	}
	subsets := [][]string{}
	for _, n := range names {
		subsets = append(subsets, []string{n})
	}
	for i := 0; i+1 < len(names); i++ {
		subsets = append(subsets, []string{names[i], names[i+1]})
	}
	if len(names) >= 3 {
		subsets = append(subsets, names[:3], names)
	}
	return subsets
}

func compareProjections(t *testing.T, label string, pr, pc *Projection) {
	t.Helper()
	if !reflect.DeepEqual(pr.RowGroup, pc.RowGroup) {
		t.Errorf("%s: RowGroup vectors differ\nrow:      %v\ncolumnar: %v", label, pr.RowGroup, pc.RowGroup)
	}
	if pr.Len() != pc.Len() || pr.NonNull != pc.NonNull {
		t.Errorf("%s: Len/NonNull differ: row (%d,%d) columnar (%d,%d)",
			label, pr.Len(), pr.NonNull, pc.Len(), pc.NonNull)
	}
	ri, ci := pr.IntDict(), pc.IntDict()
	rs, cs := pr.StrDict(), pc.StrDict()
	if (ri == nil) != (ci == nil) || (rs == nil) != (cs == nil) {
		t.Fatalf("%s: dictionary flavors differ: row(int=%v,str=%v) columnar(int=%v,str=%v)",
			label, ri != nil, rs != nil, ci != nil, cs != nil)
	}
	if ri != nil && !reflect.DeepEqual(ri, ci) {
		t.Errorf("%s: IntDict differs\nrow:      %v\ncolumnar: %v", label, ri, ci)
	}
	if rs != nil && !reflect.DeepEqual(rs, cs) {
		t.Errorf("%s: StrDict differs\nrow:      %q\ncolumnar: %q", label, rs, cs)
	}
}

func compareTables(t *testing.T, row, col *Table) {
	t.Helper()
	if row.Len() != col.Len() {
		t.Fatalf("Len: row %d, columnar %d", row.Len(), col.Len())
	}
	s := row.Schema()
	for i := 0; i < row.Len(); i++ {
		rr, rc := row.Row(i), col.Row(i)
		if len(rr) != len(rc) {
			t.Fatalf("Row(%d): arity differs", i)
		}
		for j := range rr {
			if rr[j].Key() != rc[j].Key() {
				t.Fatalf("Value(%d,%d): row %v, columnar %v", i, j, rr[j], rc[j])
			}
			if col.Value(i, j).Key() != rr[j].Key() {
				t.Fatalf("columnar Value(%d,%d) = %v, Row gave %v", i, j, col.Value(i, j), rr[j])
			}
		}
	}
	for _, attrs := range attrSubsets(s) {
		label := fmt.Sprintf("%v", attrs)
		nr, er := row.DistinctCount(attrs)
		nc, ec := col.DistinctCount(attrs)
		if (er == nil) != (ec == nil) || nr != nc {
			t.Errorf("DistinctCount%s: row (%d,%v) columnar (%d,%v)", label, nr, er, nc, ec)
		}
		cr, _ := row.CountNonNull(attrs)
		cc, _ := col.CountNonNull(attrs)
		if cr != cc {
			t.Errorf("CountNonNull%s: row %d, columnar %d", label, cr, cc)
		}
		sr, _ := row.DistinctSet(attrs)
		sc, _ := col.DistinctSet(attrs)
		if !reflect.DeepEqual(sr, sc) {
			t.Errorf("DistinctSet%s: row %q, columnar %q", label, sr, sc)
		}
		gr, _ := row.GroupRows(attrs)
		gc, _ := col.GroupRows(attrs)
		if !reflect.DeepEqual(gr, gc) {
			t.Errorf("GroupRows%s differ", label)
		}
		pr, er := row.Projection(attrs)
		pc, ec := col.Projection(attrs)
		if (er == nil) != (ec == nil) {
			t.Fatalf("Projection%s: row err %v, columnar err %v", label, er, ec)
		}
		if er == nil {
			compareProjections(t, "Projection"+label, pr, pc)
		}
		dr, _ := row.DistinctRows(attrs)
		dc, _ := col.DistinctRows(attrs)
		if len(dr) != len(dc) {
			t.Errorf("DistinctRows%s: row %d rows, columnar %d", label, len(dr), len(dc))
		} else {
			for i := range dr {
				for j := range dr[i] {
					if dr[i][j].Key() != dc[i][j].Key() {
						t.Errorf("DistinctRows%s[%d][%d]: row %v, columnar %v", label, i, j, dr[i][j], dc[i][j])
					}
				}
			}
		}
		prj, _ := row.Project(attrs)
		pcj, _ := col.Project(attrs)
		if len(prj) != len(pcj) {
			t.Errorf("Project%s: lengths differ", label)
		}
	}
	// Whole-row primitives.
	srows, crows := row.SortedRows(), col.SortedRows()
	if len(srows) != len(crows) {
		t.Fatalf("SortedRows: row %d, columnar %d", len(srows), len(crows))
	}
	for i := range srows {
		for j := range srows[i] {
			if srows[i][j].Key() != crows[i][j].Key() {
				t.Fatalf("SortedRows[%d][%d]: row %v, columnar %v", i, j, srows[i][j], crows[i][j])
			}
		}
	}
	pred := func(r Row) bool { return !r[0].IsNull() }
	if !reflect.DeepEqual(row.Filter(pred), col.Filter(pred)) {
		t.Errorf("Filter: engines disagree")
	}
	for _, a := range s.Attrs {
		u := relation.NewAttrSet(a.Name)
		okR, aR, bR, _ := row.CheckUnique(u)
		okC, aC, bC, _ := col.CheckUnique(u)
		if okR != okC || aR != aC || bR != bC {
			t.Errorf("CheckUnique(%s): row (%v,%d,%d) columnar (%v,%d,%d)", a.Name, okR, aR, bR, okC, aC, bC)
		}
	}
}

func TestEngineDifferential(t *testing.T) {
	schema := func() *relation.Schema {
		return relation.MustSchema("R", []relation.Attribute{
			{Name: "i", Type: value.KindInt},
			{Name: "s", Type: value.KindString},
			{Name: "f", Type: value.KindFloat},
			{Name: "b", Type: value.KindBool},
			{Name: "d", Type: value.KindDate},
		})
	}
	// The sweep covers both remapping strategies of the refinement
	// kernel: the default budget (dense at these table sizes) and budget
	// 0, which forces the pre-overhaul map path — the row engine is the
	// reference for both.
	for _, budget := range []int64{-1, 0} {
		budget := budget
		t.Run(fmt.Sprintf("budget%d", budget), func(t *testing.T) {
			prev := SetRefineDenseBudget(budget)
			defer SetRefineDenseBudget(prev)
			for seed := int64(0); seed < 20; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					row, col := buildPair(t, rng, schema(), 40+rng.Intn(120))
					compareTables(t, row, col)
				})
			}
		})
	}
}

// TestEngineDifferentialJoins exercises the two-table primitives — the
// IND-Discovery kernels — across engine combinations, including mixed
// (row ⊆ columnar and vice versa), which the loaders can produce when a
// restructured relation is rebuilt under a different database engine.
func TestEngineDifferentialJoins(t *testing.T) {
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "i", Type: value.KindInt},
		{Name: "s", Type: value.KindString},
	})
	for seed := int64(0); seed < 10; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1000 + seed))
			rowK, colK := buildPair(t, rng, s, 60)
			rowL, colL := buildPair(t, rng, s, 60)
			attrs := [][]string{{"i"}, {"s"}, {"i", "s"}}
			for _, ak := range attrs {
				for _, al := range attrs {
					if len(ak) != len(al) {
						continue
					}
					label := fmt.Sprintf("%v~%v", ak, al)
					nRef, _ := JoinDistinctCount(rowK, ak, rowL, al)
					for _, pair := range [][2]*Table{{colK, colL}, {rowK, colL}, {colK, rowL}} {
						n, err := JoinDistinctCount(pair[0], ak, pair[1], al)
						if err != nil || n != nRef {
							t.Errorf("JoinDistinctCount%s: got (%d,%v), row-row %d", label, n, err, nRef)
						}
					}
					inRef, _ := ContainedIn(rowK, ak, rowL, al)
					inCol, err := ContainedIn(colK, ak, colL, al)
					if err != nil || inCol != inRef {
						t.Errorf("ContainedIn%s: columnar (%v,%v), row %v", label, inCol, err, inRef)
					}
					ejRef, _ := EquiJoinRows(rowK, ak, rowL, al)
					ejCol, err := EquiJoinRows(colK, ak, colL, al)
					if err != nil {
						t.Fatalf("EquiJoinRows%s: %v", label, err)
					}
					sortPairs := func(p [][2]int) {
						sort.Slice(p, func(i, j int) bool {
							if p[i][0] != p[j][0] {
								return p[i][0] < p[j][0]
							}
							return p[i][1] < p[j][1]
						})
					}
					sortPairs(ejRef)
					sortPairs(ejCol)
					if !reflect.DeepEqual(ejRef, ejCol) {
						t.Errorf("EquiJoinRows%s: row %v, columnar %v", label, ejRef, ejCol)
					}
				}
			}
		})
	}
}

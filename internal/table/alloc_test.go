package table_test

import (
	"testing"

	"dbre/internal/relation"
	"dbre/internal/table"
	"dbre/internal/value"
)

// Allocation-regression test for the batch appender's steady state: once
// every value in a batch is already interned, appending must cost only
// the amortized growth of the code vectors — no per-row map probes that
// allocate, no per-row boxing, no per-batch scratch churn (the encoder,
// the remap table and the violation bitmap are all reused). The bound is
// a ceiling, not an exact count: amortized slice growth lands a handful
// of allocations per op at this batch size.

func allocsPerOp(f func()) int64 {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return res.AllocsPerOp()
}

func TestAllocsAppendBatchSteady(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	schema := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
		{Name: "c", Type: value.KindString},
	})
	tab := table.New(schema)
	const batch = 256
	rows := make([]table.Row, batch)
	strs := []value.Value{value.NewString("x"), value.NewString("y"), value.NewString("z")}
	for i := range rows {
		rows[i] = table.Row{
			value.NewInt(int64(i % 17)),
			value.NewInt(int64(i % 5)),
			strs[i%len(strs)],
		}
	}
	enc := table.NewChunkEncoder(tab)
	ap := tab.NewAppender()
	appendOnce := func() {
		enc.Reset()
		for _, r := range rows {
			if err := enc.AppendRow(r); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ap.AppendBatch(enc, false); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: intern every value and size the reusable scratch.
	appendOnce()
	if got := allocsPerOp(appendOnce); got > 12 {
		t.Errorf("steady-state AppendBatch: %d allocs per %d-row batch, want <= 12", got, batch)
	}
}

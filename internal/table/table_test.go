package table

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dbre/internal/relation"
	"dbre/internal/value"
)

func ints(vs ...int64) Row {
	r := make(Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func simpleSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
		{Name: "c", Type: value.KindString},
	}, relation.NewAttrSet("a"))
}

func TestInsertBasics(t *testing.T) {
	tab := New(simpleSchema(t))
	if err := tab.Insert(Row{value.NewInt(1), value.NewInt(2), value.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	// Arity.
	if err := tab.Insert(Row{value.NewInt(2)}); err == nil {
		t.Error("bad arity accepted")
	}
	// Unique violation.
	if err := tab.Insert(Row{value.NewInt(1), value.NewInt(9), value.NewString("y")}); err == nil {
		t.Error("UNIQUE violation accepted")
	}
	// NULL in key.
	if err := tab.Insert(Row{value.Null, value.NewInt(1), value.NewString("y")}); err == nil {
		t.Error("NULL key accepted")
	}
	// Type coercion int→string column fails? string col accepts coerced int.
	if err := tab.Insert(Row{value.NewInt(2), value.NewInt(1), value.NewInt(7)}); err != nil {
		t.Errorf("coercible insert rejected: %v", err)
	}
	if got := tab.Row(1)[2]; got.Kind() != value.KindString || got.Str() != "7" {
		t.Errorf("coercion result = %v", got)
	}
	// NULL allowed in non-key.
	if err := tab.Insert(Row{value.NewInt(3), value.Null, value.Null}); err != nil {
		t.Errorf("NULL non-key rejected: %v", err)
	}
}

func TestInsertNotNull(t *testing.T) {
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindString, NotNull: true},
	})
	tab := New(s)
	if err := tab.Insert(Row{value.NewInt(1), value.Null}); err == nil {
		t.Error("NOT NULL violation accepted")
	}
	if err := tab.Insert(Row{value.Null, value.NewString("ok")}); err != nil {
		t.Errorf("legal row rejected: %v", err)
	}
}

func TestInsertUncheckedBypasses(t *testing.T) {
	tab := New(simpleSchema(t))
	tab.MustInsert(Row{value.NewInt(1), value.NewInt(1), value.NewString("x")})
	tab.InsertUnchecked(Row{value.NewInt(1), value.NewInt(2), value.NewString("dup key")})
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	ok, i, j, err := tab.CheckUnique(relation.NewAttrSet("a"))
	if err != nil {
		t.Fatal(err)
	}
	if ok || i != 0 || j != 1 {
		t.Errorf("CheckUnique = %v %d %d, want violation 0,1", ok, i, j)
	}
}

func TestProjectAndDistinct(t *testing.T) {
	tab := New(simpleSchema(t))
	rows := []Row{
		{value.NewInt(1), value.NewInt(10), value.NewString("x")},
		{value.NewInt(2), value.NewInt(10), value.NewString("x")},
		{value.NewInt(3), value.NewInt(20), value.Null},
		{value.NewInt(4), value.Null, value.NewString("y")},
	}
	for _, r := range rows {
		tab.MustInsert(r)
	}
	p, err := tab.Project([]string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 || !p[0][0].Equal(value.NewInt(10)) || !p[0][1].Equal(value.NewInt(1)) {
		t.Errorf("Project = %v", p)
	}
	if _, err := tab.Project([]string{"zz"}); err == nil {
		t.Error("unknown attribute accepted")
	}

	n, err := tab.DistinctCount([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // 10, 20; NULL skipped per COUNT(DISTINCT)
		t.Errorf("DistinctCount(b) = %d, want 2", n)
	}
	n, _ = tab.DistinctCount([]string{"b", "c"})
	if n != 1 { // (10,x) twice → 1, (20,NULL) and (NULL,y) skipped
		t.Errorf("DistinctCount(b,c) = %d, want 1", n)
	}
	dr, err := tab.DistinctRows([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dr) != 2 || !dr[0][0].Equal(value.NewInt(10)) || !dr[1][0].Equal(value.NewInt(20)) {
		t.Errorf("DistinctRows = %v", dr)
	}
}

func TestKeySeparatorNoCollision(t *testing.T) {
	// Composite keys must not confuse ("ab","c") with ("a","bc").
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindString},
		{Name: "b", Type: value.KindString},
	})
	tab := New(s)
	tab.MustInsert(Row{value.NewString("ab"), value.NewString("c")})
	tab.MustInsert(Row{value.NewString("a"), value.NewString("bc")})
	n, _ := tab.DistinctCount([]string{"a", "b"})
	if n != 2 {
		t.Errorf("composite key collision: DistinctCount = %d, want 2", n)
	}
}

// twoTables builds r(x) = {1..nk} and s(y) = {off+1..off+nl} for overlap
// tests.
func twoTables(t *testing.T, nk, nl, off int) (*Table, *Table) {
	t.Helper()
	rs := relation.MustSchema("Rk", []relation.Attribute{{Name: "x", Type: value.KindInt}})
	ss := relation.MustSchema("Rl", []relation.Attribute{{Name: "y", Type: value.KindInt}})
	rt, st := New(rs), New(ss)
	for i := 1; i <= nk; i++ {
		rt.MustInsert(ints(int64(i)))
	}
	for i := off + 1; i <= off+nl; i++ {
		st.MustInsert(ints(int64(i)))
	}
	return rt, st
}

func TestJoinDistinctCount(t *testing.T) {
	cases := []struct {
		nk, nl, off, want int
	}{
		{10, 20, 0, 10}, // full inclusion
		{10, 10, 5, 5},  // partial overlap
		{10, 10, 50, 0}, // disjoint
		{10, 10, 0, 10}, // equal sets
		{20, 10, 0, 10}, // inclusion the other way
	}
	for _, c := range cases {
		rt, st := twoTables(t, c.nk, c.nl, c.off)
		got, err := JoinDistinctCount(rt, []string{"x"}, st, []string{"y"})
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("JoinDistinctCount(%d,%d,off=%d) = %d, want %d", c.nk, c.nl, c.off, got, c.want)
		}
		// Symmetry.
		got2, _ := JoinDistinctCount(st, []string{"y"}, rt, []string{"x"})
		if got2 != got {
			t.Errorf("JoinDistinctCount not symmetric: %d vs %d", got, got2)
		}
	}
	rt, st := twoTables(t, 2, 2, 0)
	if _, err := JoinDistinctCount(rt, []string{"x"}, st, []string{}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestContainedIn(t *testing.T) {
	rt, st := twoTables(t, 10, 20, 0)
	ok, err := ContainedIn(rt, []string{"x"}, st, []string{"y"})
	if err != nil || !ok {
		t.Errorf("inclusion not detected: %v %v", ok, err)
	}
	ok, _ = ContainedIn(st, []string{"y"}, rt, []string{"x"})
	if ok {
		t.Error("reverse inclusion wrongly detected")
	}
	if _, err := ContainedIn(rt, []string{"x"}, st, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestEquiJoinRows(t *testing.T) {
	rs := relation.MustSchema("R", []relation.Attribute{
		{Name: "x", Type: value.KindInt}, {Name: "t", Type: value.KindString},
	})
	ss := relation.MustSchema("S", []relation.Attribute{{Name: "y", Type: value.KindInt}})
	rt, st := New(rs), New(ss)
	rt.MustInsert(Row{value.NewInt(1), value.NewString("a")})
	rt.MustInsert(Row{value.NewInt(2), value.NewString("b")})
	rt.MustInsert(Row{value.NewInt(1), value.NewString("c")})
	rt.MustInsert(Row{value.Null, value.NewString("n")})
	st.MustInsert(ints(1))
	st.MustInsert(ints(3))
	pairs, err := EquiJoinRows(rt, []string{"x"}, st, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("join pairs = %v", pairs)
	}
	// NULL never joins.
	for _, p := range pairs {
		if rt.Row(p[0])[0].IsNull() {
			t.Error("NULL joined")
		}
		if !rt.Row(p[0])[0].Equal(st.Row(p[1])[0]) {
			t.Errorf("mismatched pair %v", p)
		}
	}
}

func TestFilterAndSortedRows(t *testing.T) {
	tab := New(simpleSchema(t))
	tab.MustInsert(Row{value.NewInt(3), value.NewInt(1), value.NewString("x")})
	tab.MustInsert(Row{value.NewInt(1), value.NewInt(2), value.NewString("y")})
	tab.MustInsert(Row{value.NewInt(2), value.NewInt(3), value.NewString("z")})
	got := tab.Filter(func(r Row) bool { return r[0].Int() >= 2 })
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Filter = %v", got)
	}
	sorted := tab.SortedRows()
	if !sorted[0][0].Equal(value.NewInt(1)) || !sorted[2][0].Equal(value.NewInt(3)) {
		t.Errorf("SortedRows = %v", sorted)
	}
	if !tab.Row(0)[0].Equal(value.NewInt(3)) {
		t.Error("SortedRows mutated the table")
	}
}

func TestDatabase(t *testing.T) {
	cat := relation.MustCatalog(
		relation.MustSchema("A", []relation.Attribute{{Name: "x", Type: value.KindInt}}),
		relation.MustSchema("B", []relation.Attribute{{Name: "y", Type: value.KindInt}}),
	)
	db := NewDatabase(cat)
	if db.Catalog() != cat {
		t.Error("Catalog lost")
	}
	ta, ok := db.Table("A")
	if !ok {
		t.Fatal("Table(A) missing")
	}
	ta.MustInsert(ints(1))
	db.MustTable("B").MustInsert(ints(2))
	if db.TotalRows() != 2 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
	if _, ok := db.Table("C"); ok {
		t.Error("unknown relation found")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustTable did not panic")
			}
		}()
		db.MustTable("C")
	}()
	ns := relation.MustSchema("S1", []relation.Attribute{{Name: "z", Type: value.KindInt}})
	if err := db.AddRelation(ns); err != nil {
		t.Fatal(err)
	}
	if !db.Catalog().Has("S1") {
		t.Error("AddRelation did not register in catalog")
	}
	if _, ok := db.Table("S1"); !ok {
		t.Error("AddRelation did not create the table")
	}
	if err := db.AddRelation(ns); err == nil {
		t.Error("duplicate AddRelation accepted")
	}
}

// randTablePair generates two single-column integer tables with overlapping
// small domains for property tests.
type randTablePair struct {
	A, B []int64
}

// Generate implements quick.Generator.
func (randTablePair) Generate(r *rand.Rand, _ int) reflect.Value {
	gen := func() []int64 {
		n := r.Intn(40)
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(r.Intn(15))
		}
		return out
	}
	return reflect.ValueOf(randTablePair{gen(), gen()})
}

func buildSingle(name string, vals []int64) *Table {
	s := relation.MustSchema(name, []relation.Attribute{{Name: "v", Type: value.KindInt}})
	t := New(s)
	for _, v := range vals {
		t.MustInsert(ints(v))
	}
	return t
}

func setOf(vals []int64) map[int64]bool {
	m := make(map[int64]bool)
	for _, v := range vals {
		m[v] = true
	}
	return m
}

func TestQuickDistinctCountMatchesBruteForce(t *testing.T) {
	f := func(p randTablePair) bool {
		tab := buildSingle("R", p.A)
		n, err := tab.DistinctCount([]string{"v"})
		return err == nil && n == len(setOf(p.A))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinCountIsIntersection(t *testing.T) {
	f := func(p randTablePair) bool {
		ta, tb := buildSingle("R", p.A), buildSingle("S", p.B)
		n, err := JoinDistinctCount(ta, []string{"v"}, tb, []string{"v"})
		if err != nil {
			return false
		}
		want := 0
		sb := setOf(p.B)
		for v := range setOf(p.A) {
			if sb[v] {
				want++
			}
		}
		return n == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainmentMatchesSets(t *testing.T) {
	f := func(p randTablePair) bool {
		ta, tb := buildSingle("R", p.A), buildSingle("S", p.B)
		got, err := ContainedIn(ta, []string{"v"}, tb, []string{"v"})
		if err != nil {
			return false
		}
		sb := setOf(p.B)
		want := true
		for v := range setOf(p.A) {
			if !sb[v] {
				want = false
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{value.NewInt(1)}
	c := r.Clone()
	c[0] = value.NewInt(2)
	if !r[0].Equal(value.NewInt(1)) {
		t.Error("Clone shares storage")
	}
}

func TestCheckUniqueClean(t *testing.T) {
	tab := New(simpleSchema(t))
	tab.MustInsert(Row{value.NewInt(1), value.NewInt(1), value.NewString("x")})
	tab.MustInsert(Row{value.NewInt(2), value.NewInt(1), value.NewString("x")})
	ok, _, _, err := tab.CheckUnique(relation.NewAttrSet("a"))
	if err != nil || !ok {
		t.Errorf("CheckUnique clean = %v, %v", ok, err)
	}
	if _, _, _, err := tab.CheckUnique(relation.NewAttrSet("zz")); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestStringsInKeys(t *testing.T) {
	// Guard the 0x1f separator choice: values containing the separator
	// byte must still be distinguished via value.Key prefixes.
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindString},
		{Name: "b", Type: value.KindString},
	})
	tab := New(s)
	tab.MustInsert(Row{value.NewString("x\x1f"), value.NewString("y")})
	tab.MustInsert(Row{value.NewString("x"), value.NewString("\x1fy")})
	n, _ := tab.DistinctCount([]string{"a", "b"})
	if n != 2 {
		t.Fatalf("separator collision: DistinctCount = %d, want 2", n)
	}
}

func TestCompositeKeysSelfDelimiting(t *testing.T) {
	// String keys are length-prefixed, so no split of a concatenation can
	// be confused with another: ("ab","c") vs ("a","bc"), values holding
	// the 0x1f separator byte, and values that begin with a kind tag all
	// stay distinct in composite keys.
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindString},
		{Name: "b", Type: value.KindString},
	})
	pairs := [][2]string{
		{"ab", "c"}, {"a", "bc"}, {"abc", ""}, {"", "abc"},
		{"a\x1fb", "c"}, {"a", "b\x1fc"}, {"a\x1f", "bc"},
		{"s1", "x"}, {"s", "1x"}, // 's' is the string kind tag
		{"i7", ""}, {"", "i7"},
	}
	for _, eng := range []Engine{EngineRow, EngineColumnar} {
		tab := NewWithEngine(s, eng)
		for _, p := range pairs {
			tab.MustInsert(Row{value.NewString(p[0]), value.NewString(p[1])})
		}
		n, err := tab.DistinctCount([]string{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		if n != len(pairs) {
			t.Errorf("%v: DistinctCount = %d, want %d distinct pairs", eng, n, len(pairs))
		}
	}
}

func TestSchemaStringSmoke(t *testing.T) {
	tab := New(simpleSchema(t))
	if !strings.Contains(tab.Schema().String(), "R(") {
		t.Error("schema lost")
	}
}

func TestColIndex(t *testing.T) {
	tab := New(simpleSchema(t))
	if i, ok := tab.ColIndex("b"); !ok || i != 1 {
		t.Errorf("ColIndex(b) = %d, %v", i, ok)
	}
	if _, ok := tab.ColIndex("zz"); ok {
		t.Error("ColIndex(zz) found")
	}
}

func TestMustInsertPanics(t *testing.T) {
	tab := New(simpleSchema(t))
	defer func() {
		if recover() == nil {
			t.Error("MustInsert did not panic on arity error")
		}
	}()
	tab.MustInsert(Row{value.NewInt(1)})
}

func TestJoinDistinctCountStringPath(t *testing.T) {
	// Non-integer attributes exercise the generic (string-keyed) path.
	rs := relation.MustSchema("R", []relation.Attribute{{Name: "s", Type: value.KindString}})
	ss := relation.MustSchema("S", []relation.Attribute{{Name: "t", Type: value.KindString}})
	rt, st := New(rs), New(ss)
	for _, v := range []string{"a", "b", "c", "a"} {
		rt.MustInsert(Row{value.NewString(v)})
	}
	for _, v := range []string{"b", "c", "d"} {
		st.MustInsert(Row{value.NewString(v)})
	}
	n, err := JoinDistinctCount(rt, []string{"s"}, st, []string{"t"})
	if err != nil || n != 2 {
		t.Errorf("string join count = %d, %v", n, err)
	}
	// Multi-attribute joins always take the generic path.
	rs2 := relation.MustSchema("R2", []relation.Attribute{
		{Name: "a", Type: value.KindInt}, {Name: "b", Type: value.KindInt},
	})
	rt2 := New(rs2)
	rt2.MustInsert(ints(1, 2))
	rt2.MustInsert(ints(3, 4))
	st2 := New(relation.MustSchema("S2", []relation.Attribute{
		{Name: "c", Type: value.KindInt}, {Name: "d", Type: value.KindInt},
	}))
	st2.MustInsert(ints(1, 2))
	n2, err := JoinDistinctCount(rt2, []string{"a", "b"}, st2, []string{"c", "d"})
	if err != nil || n2 != 1 {
		t.Errorf("composite join count = %d, %v", n2, err)
	}
	// Mixed-type single attribute falls back to the generic path too.
	ms := New(relation.MustSchema("M", []relation.Attribute{{Name: "x", Type: value.KindString}}))
	ms.MustInsert(Row{value.NewString("1")})
	n3, err := JoinDistinctCount(rt, []string{"s"}, ms, []string{"x"})
	if err != nil || n3 != 0 {
		t.Errorf("mixed join count = %d, %v", n3, err)
	}
	// Unknown attribute errors through the fast path.
	if _, err := JoinDistinctCount(rt2, []string{"zz"}, st2, []string{"c"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestReplaceRelation(t *testing.T) {
	db := NewDatabase(relation.MustCatalog(simpleSchema(t)))
	db.MustTable("R").MustInsert(Row{value.NewInt(1), value.NewInt(2), value.NewString("x")})
	newSchema := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: value.KindInt},
	}, relation.NewAttrSet("a"))
	old, err := db.ReplaceRelation(newSchema)
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 1 {
		t.Errorf("old table rows = %d", old.Len())
	}
	if db.MustTable("R").Len() != 0 {
		t.Error("new table not empty")
	}
	if got, _ := db.Catalog().Get("R"); len(got.Attrs) != 1 {
		t.Error("catalog not updated")
	}
	ghost := relation.MustSchema("Ghost", []relation.Attribute{{Name: "g", Type: value.KindInt}})
	if _, err := db.ReplaceRelation(ghost); err == nil {
		t.Error("unknown relation replaced")
	}
}

func TestDistinctCountIntFastPathAgreesWithGeneric(t *testing.T) {
	// The int fast path and the generic composite path must agree.
	tab := New(simpleSchema(t))
	for i := 0; i < 50; i++ {
		tab.MustInsert(Row{value.NewInt(int64(i)), value.NewInt(int64(i % 7)), value.NewString("x")})
	}
	fast, err := tab.DistinctCount([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	set, err := tab.DistinctSet([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if fast != len(set) {
		t.Errorf("fast path %d vs generic %d", fast, len(set))
	}
}

func TestApproxBytes(t *testing.T) {
	for _, engine := range []Engine{EngineColumnar, EngineRow} {
		tab := NewWithEngine(simpleSchema(t), engine)
		if tab.ApproxBytes() != 0 {
			t.Errorf("%s: empty table ApproxBytes = %d, want 0", engine, tab.ApproxBytes())
		}
		empty := tab.ApproxBytes()
		for i := int64(0); i < 100; i++ {
			tab.MustInsert(Row{value.NewInt(i), value.NewInt(i % 3), value.NewString(strings.Repeat("x", 50))})
		}
		got := tab.ApproxBytes()
		if got <= empty {
			t.Fatalf("%s: ApproxBytes did not grow (%d)", engine, got)
		}
		// Sanity bounds: at least the 100 stored 50-byte strings'
		// payload (columnar dictionaries dedupe to one entry), at most a
		// few hundred bytes per row.
		if engine == EngineRow && got < 100*50 {
			t.Errorf("row engine ApproxBytes = %d, implausibly small", got)
		}
		if got > 100*1000 {
			t.Errorf("%s: ApproxBytes = %d, implausibly large", engine, got)
		}
	}

	// Database-level sum.
	db := NewDatabase(relation.MustCatalog(simpleSchema(t)))
	if db.ApproxBytes() != 0 {
		t.Errorf("empty database ApproxBytes = %d", db.ApproxBytes())
	}
	db.MustTable("R").MustInsert(Row{value.NewInt(1), value.NewInt(2), value.NewString("y")})
	if db.ApproxBytes() != db.MustTable("R").ApproxBytes() || db.ApproxBytes() == 0 {
		t.Errorf("database ApproxBytes = %d", db.ApproxBytes())
	}
}

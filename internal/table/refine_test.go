package table

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dbre/internal/relation"
	"dbre/internal/value"
)

// Property tests for the refinement kernel: every remapping strategy —
// dense direct-addressed, sparse map, and refinement resumed from a
// prefix partition — must produce bit-identical group vectors. The
// from-scratch map path is the reference (it is the pre-overhaul
// kernel, itself certified against the row engine by the differential
// harness in engine_differential_test.go).

// withBudget runs f under a temporary dense-remapping budget.
func withBudget(budget int64, f func()) {
	prev := SetRefineDenseBudget(budget)
	defer SetRefineDenseBudget(prev)
	f()
}

// refineSchema is a three-column schema whose small value domains force
// group collisions, with NULLs injected by randValue.
func refineSchema() *relation.Schema {
	return relation.MustSchema("R", []relation.Attribute{
		{Name: "i", Type: value.KindInt},
		{Name: "s", Type: value.KindString},
		{Name: "f", Type: value.KindFloat},
	})
}

func fillRandom(t *testing.T, tab *Table, rng *rand.Rand, nrows int) {
	t.Helper()
	kinds := []value.Kind{value.KindInt, value.KindString, value.KindFloat}
	for n := 0; n < nrows; n++ {
		r := make(Row, len(kinds))
		for i, k := range kinds {
			r[i] = randValue(rng, k)
		}
		tab.InsertUnchecked(r)
	}
}

// mustProj builds tab's projection over attrs or fails the test.
func mustProj(t *testing.T, tab *Table, attrs []string) *Projection {
	t.Helper()
	p, err := tab.Projection(attrs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// sameProjection asserts the two projections agree on the bit level.
func sameProjection(t *testing.T, label string, want, got *Projection) {
	t.Helper()
	if !reflect.DeepEqual(want.RowGroup, got.RowGroup) {
		t.Errorf("%s: RowGroup vectors differ\nwant: %v\ngot:  %v", label, want.RowGroup, got.RowGroup)
	}
	if want.Len() != got.Len() || want.NonNull != got.NonNull {
		t.Errorf("%s: Len/NonNull = (%d,%d), want (%d,%d)",
			label, got.Len(), got.NonNull, want.Len(), want.NonNull)
	}
}

// TestRefineKernelPaths drives randomized NULL-bearing tables through
// every kernel configuration and requires bit-identical projections:
// map-only (budget 0), always-dense (unbounded budget), the default
// budget, and a mid budget that mixes strategies across steps of the
// same projection.
func TestRefineKernelPaths(t *testing.T) {
	attrs := []string{"i", "s", "f"}
	for seed := int64(0); seed < 25; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tab := New(refineSchema())
			fillRandom(t, tab, rng, 30+rng.Intn(150))
			var ref *Projection
			withBudget(0, func() { ref = mustProj(t, tab, attrs) })
			if ref.mapSteps != 2 || ref.denseSteps != 0 {
				t.Fatalf("budget 0 ran %d dense / %d map steps, want 0/2", ref.denseSteps, ref.mapSteps)
			}
			for _, budget := range []int64{1 << 40, -1, 8} {
				var got *Projection
				withBudget(budget, func() { got = mustProj(t, tab, attrs) })
				sameProjection(t, fmt.Sprintf("budget %d", budget), ref, got)
			}
			var dense *Projection
			withBudget(1<<40, func() { dense = mustProj(t, tab, attrs) })
			if dense.denseSteps != 2 || dense.mapSteps != 0 {
				t.Errorf("unbounded budget ran %d dense / %d map steps, want 2/0", dense.denseSteps, dense.mapSteps)
			}
		})
	}
}

// TestProjectionFromPrefixEquivalence checks that refinement resumed
// from every proper prefix of the attribute list reproduces the
// from-scratch projection bit for bit, under both remapping strategies.
func TestProjectionFromPrefixEquivalence(t *testing.T) {
	attrs := []string{"i", "s", "f"}
	for seed := int64(100); seed < 120; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tab := New(refineSchema())
			fillRandom(t, tab, rng, 30+rng.Intn(150))
			ref := mustProj(t, tab, attrs)
			for prefixLen := 1; prefixLen <= len(attrs); prefixLen++ {
				prefix := mustProj(t, tab, attrs[:prefixLen])
				for _, budget := range []int64{-1, 0, 1 << 40} {
					withBudget(budget, func() {
						got, err := tab.ProjectionFrom(prefix, prefixLen, attrs)
						if err != nil {
							t.Fatal(err)
						}
						sameProjection(t, fmt.Sprintf("prefix %d budget %d", prefixLen, budget), ref, got)
					})
				}
			}
		})
	}
}

// TestProjectionFromStalePrefix pins the staleness backstop: a prefix
// partition taken before further inserts no longer matches the table
// length, and ProjectionFrom must rebuild from scratch instead of
// producing a short (or corrupt) vector.
func TestProjectionFromStalePrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := New(refineSchema())
	fillRandom(t, tab, rng, 80)
	attrs := []string{"i", "s", "f"}
	stale := mustProj(t, tab, attrs[:2])
	fillRandom(t, tab, rng, 40)
	want := mustProj(t, tab, attrs)
	got, err := tab.ProjectionFrom(stale, 2, attrs)
	if err != nil {
		t.Fatal(err)
	}
	sameProjection(t, "stale prefix", want, got)
	if len(got.RowGroup) != tab.Len() {
		t.Fatalf("stale-prefix projection covers %d rows, table has %d", len(got.RowGroup), tab.Len())
	}
}

// TestProjectionFromValidation covers the argument edges: out-of-range
// prefix lengths error, a full-length prefix is returned as-is, and a
// nil prefix falls back to a from-scratch build.
func TestProjectionFromValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := New(refineSchema())
	fillRandom(t, tab, rng, 50)
	attrs := []string{"i", "s"}
	p := mustProj(t, tab, attrs)
	if _, err := tab.ProjectionFrom(p, 0, attrs); err == nil {
		t.Error("prefixLen 0 accepted")
	}
	if _, err := tab.ProjectionFrom(p, 3, attrs); err == nil {
		t.Error("prefixLen beyond attrs accepted")
	}
	if got, err := tab.ProjectionFrom(p, 2, attrs); err != nil || got != p {
		t.Errorf("full-length prefix: got (%p,%v), want the prefix itself", got, err)
	}
	got, err := tab.ProjectionFrom(nil, 1, attrs)
	if err != nil {
		t.Fatal(err)
	}
	sameProjection(t, "nil prefix", p, got)
}

// FuzzRefineKernel feeds fuzz-chosen code patterns through the three
// kernel configurations and requires bit-identical group vectors. The
// fuzzer controls the row count, the value domains (including NULL
// density) and the per-row draws via the seed, so it explores group/dict
// shapes the property tests' fixed distributions do not.
func FuzzRefineKernel(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(60))
	f.Add(int64(42), uint8(1), uint8(1), uint8(200))
	f.Add(int64(-9), uint8(12), uint8(2), uint8(33))
	f.Fuzz(func(t *testing.T, seed int64, domA, domB uint8, nrows uint8) {
		rng := rand.New(rand.NewSource(seed))
		s := relation.MustSchema("F", []relation.Attribute{
			{Name: "a", Type: value.KindInt},
			{Name: "b", Type: value.KindInt},
			{Name: "c", Type: value.KindInt},
		})
		tab := New(s)
		da, db := int(domA)+1, int(domB)+1
		for n := 0; n < int(nrows); n++ {
			draw := func(dom int) value.Value {
				if rng.Intn(6) == 0 {
					return value.Null
				}
				return value.NewInt(int64(rng.Intn(dom)))
			}
			tab.InsertUnchecked(Row{draw(da), draw(db), draw(da * db)})
		}
		attrs := []string{"a", "b", "c"}
		var ref *Projection
		withBudget(0, func() { ref = mustProj(t, tab, attrs) })
		for _, budget := range []int64{-1, 1 << 40, 4} {
			var got *Projection
			withBudget(budget, func() { got = mustProj(t, tab, attrs) })
			sameProjection(t, fmt.Sprintf("budget %d", budget), ref, got)
		}
		if tab.Len() > 0 {
			prefix := mustProj(t, tab, attrs[:2])
			got, err := tab.ProjectionFrom(prefix, 2, attrs)
			if err != nil {
				t.Fatal(err)
			}
			sameProjection(t, "prefix", ref, got)
		}
	})
}

package table

import (
	"fmt"
	"math/rand"
	"testing"

	"dbre/internal/relation"
	"dbre/internal/value"
)

// appendSchemas are the shapes the batch-vs-serial differential runs
// over: single-column keys (the dense uniq path), composite keys (the
// packed path), double constraints (phantom registrations on rejected
// rows), NOT NULL attributes, and a constraint-free relation.
func appendSchemas(t *testing.T) []*relation.Schema {
	t.Helper()
	mk := func(name string, attrs []relation.Attribute, uniques ...relation.AttrSet) *relation.Schema {
		s, err := relation.NewSchema(name, attrs, uniques...)
		if err != nil {
			t.Fatalf("schema %s: %v", name, err)
		}
		return s
	}
	return []*relation.Schema{
		mk("single",
			[]relation.Attribute{
				{Name: "id", Type: value.KindInt},
				{Name: "v", Type: value.KindString},
			},
			relation.NewAttrSet("id")),
		mk("multi",
			[]relation.Attribute{
				{Name: "a", Type: value.KindInt},
				{Name: "b", Type: value.KindString},
				{Name: "c", Type: value.KindFloat},
			},
			relation.NewAttrSet("a", "b")),
		mk("double",
			[]relation.Attribute{
				{Name: "id", Type: value.KindInt},
				{Name: "code", Type: value.KindString},
				{Name: "x", Type: value.KindInt},
			},
			relation.NewAttrSet("id"), relation.NewAttrSet("code", "x")),
		mk("notnull",
			[]relation.Attribute{
				{Name: "id", Type: value.KindInt},
				{Name: "req", Type: value.KindString, NotNull: true},
			},
			relation.NewAttrSet("id")),
		mk("free",
			[]relation.Attribute{
				{Name: "p", Type: value.KindInt},
				{Name: "q", Type: value.KindInt},
			}),
	}
}

// randomRow draws values from deliberately small domains so duplicate
// keys, NULLs and repeated dictionary entries all occur.
func randomRow(rng *rand.Rand, s *relation.Schema) Row {
	row := make(Row, len(s.Attrs))
	for i, a := range s.Attrs {
		if rng.Intn(6) == 0 {
			row[i] = value.Null
			continue
		}
		switch a.Type {
		case value.KindInt:
			row[i] = value.NewInt(int64(rng.Intn(12)))
		case value.KindFloat:
			row[i] = value.NewFloat(float64(rng.Intn(8)) / 2)
		default:
			row[i] = value.NewString(fmt.Sprintf("s%d", rng.Intn(10)))
		}
	}
	return row
}

// diffTables compares every observable and internal piece of engine
// state; "" means identical.
func diffTables(a, b *Table) string {
	if a.nrows != b.nrows || len(a.rows) != len(b.rows) {
		return fmt.Sprintf("rows: %d/%d vs %d/%d", a.nrows, len(a.rows), b.nrows, len(b.rows))
	}
	if a.version != b.version {
		return fmt.Sprintf("version: %d vs %d", a.version, b.version)
	}
	for ci := range a.columns {
		ca, cb := &a.columns[ci], &b.columns[ci]
		if len(ca.codes) != len(cb.codes) {
			return fmt.Sprintf("col %d: %d vs %d codes", ci, len(ca.codes), len(cb.codes))
		}
		for i := range ca.codes {
			if ca.codes[i] != cb.codes[i] {
				return fmt.Sprintf("col %d row %d: code %d vs %d", ci, i, ca.codes[i], cb.codes[i])
			}
		}
		if len(ca.dict) != len(cb.dict) {
			return fmt.Sprintf("col %d: dict %d vs %d", ci, len(ca.dict), len(cb.dict))
		}
		for i := range ca.dict {
			if !ca.dict[i].Equal(cb.dict[i]) {
				return fmt.Sprintf("col %d: dict[%d] %v vs %v", ci, i, ca.dict[i], cb.dict[i])
			}
		}
		if ca.nonNull != cb.nonNull || ca.nonInt != cb.nonInt {
			return fmt.Sprintf("col %d: nonNull/nonInt %d/%v vs %d/%v", ci, ca.nonNull, ca.nonInt, cb.nonNull, cb.nonInt)
		}
		if len(ca.ints) != len(cb.ints) || len(ca.keys) != len(cb.keys) {
			return fmt.Sprintf("col %d: intern maps differ", ci)
		}
		for k, v := range ca.ints {
			if cb.ints[k] != v {
				return fmt.Sprintf("col %d: ints[%d] %d vs %d", ci, k, v, cb.ints[k])
			}
		}
		for k, v := range ca.keys {
			if cb.keys[k] != v {
				return fmt.Sprintf("col %d: keys[%q] %d vs %d", ci, k, v, cb.keys[k])
			}
		}
	}
	for ui := range a.uniq {
		ua, ub := a.uniq[ui], b.uniq[ui]
		if len(ua.byKey) != len(ub.byKey) {
			return fmt.Sprintf("uniq %d: byKey %d vs %d", ui, len(ua.byKey), len(ub.byKey))
		}
		for k, v := range ua.byKey {
			if w, ok := ub.byKey[k]; !ok || w != v {
				return fmt.Sprintf("uniq %d: byKey[%q] %d vs %d", ui, k, v, w)
			}
		}
		reg := func(u *uniqIndex) map[int32]int32 {
			m := make(map[int32]int32)
			for c, r := range u.dense {
				if r >= 0 {
					m[int32(c)] = r
				}
			}
			return m
		}
		ra, rb := reg(ua), reg(ub)
		if len(ra) != len(rb) {
			return fmt.Sprintf("uniq %d: dense %d vs %d registrations", ui, len(ra), len(rb))
		}
		for c, r := range ra {
			if rb[c] != r {
				return fmt.Sprintf("uniq %d: dense[%d] %d vs %d", ui, c, r, rb[c])
			}
		}
		if len(ua.packed) != len(ub.packed) {
			return fmt.Sprintf("uniq %d: packed %d vs %d", ui, len(ua.packed), len(ub.packed))
		}
		for k, v := range ua.packed {
			if ub.packed[k] != v {
				return fmt.Sprintf("uniq %d: packed[%q] %d vs %d", ui, k, v, ub.packed[k])
			}
		}
	}
	return ""
}

// loadSerialRef replicates the tolerant loader's per-row reference path:
// Insert, and on violation count + InsertUnchecked.
func loadSerialRef(t *Table, rows []Row) int {
	violations := 0
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			violations++
			t.InsertUnchecked(r)
		}
	}
	return violations
}

// loadBatches splits rows into chunks of the given size and appends them
// through the batch API.
func loadBatches(t *Table, rows []Row, chunk int, strict bool) (int, error) {
	ap := t.NewAppender()
	total := 0
	for at := 0; at < len(rows); at += chunk {
		end := at + chunk
		if end > len(rows) {
			end = len(rows)
		}
		enc := NewChunkEncoder(t)
		for _, r := range rows[at:end] {
			if err := enc.AppendRow(r); err != nil {
				return total, err
			}
		}
		v, err := ap.AppendBatch(enc, strict)
		total += v
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TestAppendBatchDifferential drives random tolerant loads through the
// per-row reference path and the batch appender across chunk sizes and
// engines and requires bit-identical engine state and violation counts.
func TestAppendBatchDifferential(t *testing.T) {
	for _, engine := range []Engine{EngineColumnar, EngineRow} {
		for _, schema := range appendSchemas(t) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 40 + rng.Intn(120)
				rows := make([]Row, n)
				for i := range rows {
					rows[i] = randomRow(rng, schema)
				}
				ref := NewWithEngine(schema, engine)
				wantViol := loadSerialRef(ref, rows)
				for _, chunk := range []int{1, 7, 32, len(rows)} {
					got := NewWithEngine(schema, engine)
					gotViol, err := loadBatches(got, rows, chunk, false)
					if err != nil {
						t.Fatalf("%v/%s seed %d chunk %d: %v", engine, schema.Name, seed, chunk, err)
					}
					if gotViol != wantViol {
						t.Fatalf("%v/%s seed %d chunk %d: %d violations, want %d",
							engine, schema.Name, seed, chunk, gotViol, wantViol)
					}
					if d := diffTables(ref, got); d != "" {
						t.Fatalf("%v/%s seed %d chunk %d: %s", engine, schema.Name, seed, chunk, d)
					}
				}
			}
		}
	}
}

// TestAppendBatchStrictDifferential compares strict batch loads against
// the per-row strict reference: identical error text, identical number
// of rows retained, identical engine state after the failure — including
// the rolled-back dictionaries and the phantom registrations the
// rejected row leaves behind.
func TestAppendBatchStrictDifferential(t *testing.T) {
	for _, engine := range []Engine{EngineColumnar, EngineRow} {
		for _, schema := range appendSchemas(t) {
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(1000 + seed))
				n := 30 + rng.Intn(80)
				rows := make([]Row, n)
				for i := range rows {
					rows[i] = randomRow(rng, schema)
				}
				ref := NewWithEngine(schema, engine)
				var refErr error
				for _, r := range rows {
					if refErr = ref.Insert(r); refErr != nil {
						break
					}
				}
				for _, chunk := range []int{1, 5, 17, len(rows)} {
					got := NewWithEngine(schema, engine)
					_, gotErr := loadBatches(got, rows, chunk, true)
					switch {
					case refErr == nil && gotErr != nil:
						t.Fatalf("%v/%s seed %d chunk %d: unexpected error %v", engine, schema.Name, seed, chunk, gotErr)
					case refErr != nil && gotErr == nil:
						t.Fatalf("%v/%s seed %d chunk %d: missing error %v", engine, schema.Name, seed, chunk, refErr)
					case refErr != nil && gotErr.Error() != refErr.Error():
						t.Fatalf("%v/%s seed %d chunk %d: error %q, want %q",
							engine, schema.Name, seed, chunk, gotErr, refErr)
					}
					if d := diffTables(ref, got); d != "" {
						t.Fatalf("%v/%s seed %d chunk %d: %s", engine, schema.Name, seed, chunk, d)
					}
				}
			}
		}
	}
}

// TestAppendBatchPhantomAcrossBatches pins the subtlest interaction: a
// row rejected by its *second* constraint in one strict batch leaves a
// value-keyed phantom registration of its first key, and a later batch
// inserting that key must still trip over it.
func TestAppendBatchPhantomAcrossBatches(t *testing.T) {
	schema := appendSchemas(t)[2] // "double": UNIQUE(id), UNIQUE(code,x)
	tab := New(schema)
	mkRow := func(id int64, code string, x int64) Row {
		return Row{value.NewInt(id), value.NewString(code), value.NewInt(x)}
	}
	enc := NewChunkEncoder(tab)
	ap := tab.NewAppender()
	for _, r := range []Row{mkRow(1, "a", 1), mkRow(2, "b", 1), mkRow(3, "b", 1)} {
		if err := enc.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	// Row 2 (id=3) violates UNIQUE(code,x) after registering id=3 under
	// UNIQUE(id); strict rollback keeps rows 0..1 and the phantom.
	if _, err := ap.AppendBatch(enc, true); err == nil {
		t.Fatal("want UNIQUE(code,x) violation")
	}
	if tab.Len() != 2 {
		t.Fatalf("rows after rollback = %d, want 2", tab.Len())
	}
	// id=3 was never stored, but its phantom registration must block a
	// fresh insert of id=3 — exactly as per-row Inserts would.
	ref := New(schema)
	for _, r := range []Row{mkRow(1, "a", 1), mkRow(2, "b", 1)} {
		if err := ref.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	refErr := ref.Insert(mkRow(3, "b", 1)) // leaves the same phantom
	if refErr == nil {
		t.Fatal("reference: want violation")
	}
	gotErr := tab.Insert(mkRow(3, "zz", 9))
	wantErr := ref.Insert(mkRow(3, "zz", 9))
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("phantom probe: got %v, want %v", gotErr, wantErr)
	}
	if gotErr != nil && gotErr.Error() != wantErr.Error() {
		t.Fatalf("phantom probe: got %q, want %q", gotErr, wantErr)
	}
	if d := diffTables(ref, tab); d != "" {
		t.Fatalf("state diverged: %s", d)
	}
}

// TestAppendBatchSchemaMismatch guards the encoder/table pairing.
func TestAppendBatchSchemaMismatch(t *testing.T) {
	ss := appendSchemas(t)
	a, b := New(ss[0]), New(ss[1])
	enc := NewChunkEncoder(b)
	if _, err := a.NewAppender().AppendBatch(enc, false); err == nil {
		t.Fatal("want schema mismatch error")
	}
}

// TestChunkEncoderReset checks that a reset encoder reuses cleanly.
func TestChunkEncoderReset(t *testing.T) {
	schema := appendSchemas(t)[0]
	tab := New(schema)
	enc := NewChunkEncoder(tab)
	ap := tab.NewAppender()
	for round := 0; round < 3; round++ {
		enc.Reset()
		for i := 0; i < 5; i++ {
			row := Row{value.NewInt(int64(round*5 + i)), value.NewString("v")}
			if err := enc.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		if v, err := ap.AppendBatch(enc, true); err != nil || v != 0 {
			t.Fatalf("round %d: %d violations, err %v", round, v, err)
		}
	}
	if tab.Len() != 15 {
		t.Fatalf("rows = %d, want 15", tab.Len())
	}
}

package table

import (
	"fmt"
	"testing"

	"dbre/internal/relation"
	"dbre/internal/sketch"
	"dbre/internal/value"
)

func sketchTestSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema("S", []relation.Attribute{
		{Name: "id", Type: value.KindInt},
		{Name: "name", Type: value.KindString},
	}, relation.NewAttrSet("id"))
}

// sketchSig reads the signature of attr after catch-up.
func sketchSig(t *testing.T, tab *Table, attr string) *sketch.BottomK {
	t.Helper()
	s := tab.Sketches()
	if s == nil {
		t.Fatal("sketches not enabled")
	}
	col := s.Column(attr)
	if col == nil {
		t.Fatalf("no sketch column for %q", attr)
	}
	return col.Sig
}

func TestSketchesRideAppender(t *testing.T) {
	schema := sketchTestSchema(t)

	// One table maintained incrementally through batch appends...
	inc := New(schema)
	if inc.EnableSketches(sketch.Config{}) == nil {
		t.Fatal("EnableSketches returned nil on columnar engine")
	}
	a := inc.NewAppender()
	for chunk := 0; chunk < 4; chunk++ {
		enc := NewChunkEncoder(inc)
		for i := 0; i < 250; i++ {
			id := chunk*250 + i
			if err := enc.AppendRow(Row{value.NewInt(int64(id)), value.NewString(fmt.Sprintf("n%d", id%100))}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := a.AppendBatch(enc, true); err != nil {
			t.Fatal(err)
		}
	}

	// ...must equal one built from scratch over the final extension.
	ref := New(schema)
	ref.EnableSketches(sketch.Config{})
	for i := 0; i < 1000; i++ {
		if err := ref.Insert(Row{value.NewInt(int64(i)), value.NewString(fmt.Sprintf("n%d", i%100))}); err != nil {
			t.Fatal(err)
		}
	}

	for _, attr := range []string{"id", "name"} {
		got, want := sketchSig(t, inc, attr), sketchSig(t, ref, attr)
		if fmt.Sprint(got.Hashes()) != fmt.Sprint(want.Hashes()) {
			t.Fatalf("%s: incremental signature diverges from scratch build", attr)
		}
		gc, wc := inc.Sketches().Column(attr), ref.Sketches().Column(attr)
		if gc.Distinct != wc.Distinct || gc.HLL.Count() != wc.HLL.Count() {
			t.Fatalf("%s: distinct=%d/%d hll=%d/%d", attr, gc.Distinct, wc.Distinct, gc.HLL.Count(), wc.HLL.Count())
		}
	}
	gs, ws := inc.Sketches().SampleRows(), ref.Sketches().SampleRows()
	if fmt.Sprint(gs) != fmt.Sprint(ws) {
		t.Fatal("incremental row sample diverges from scratch build")
	}
	if inc.Sketches().Builds() == 0 {
		t.Fatal("no build passes recorded")
	}
}

func TestSketchesRebuildOnStrictRollback(t *testing.T) {
	schema := sketchTestSchema(t)
	tab := New(schema)
	tab.EnableSketches(sketch.Config{})
	for i := 0; i < 50; i++ {
		if err := tab.Insert(Row{value.NewInt(int64(i)), value.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	// Consume the current state so the watermark is past the entries the
	// failed batch will roll back.
	sketchSig(t, tab, "id")

	a := tab.NewAppender()
	enc := NewChunkEncoder(tab)
	for _, r := range []Row{
		{value.NewInt(1000), value.NewString("y")}, // survives the rollback
		{value.NewInt(1000), value.NewString("z")}, // UNIQUE violation
	} {
		if err := enc.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.AppendBatch(enc, true); err == nil {
		t.Fatal("expected strict-mode batch error")
	}

	// Rollback keeps the batch rows preceding the failure, so the
	// surviving extension is 0..49 plus (1000, "y"). The sketches must
	// describe exactly that — no residue from the rolled-back row.
	ref := New(schema)
	ref.EnableSketches(sketch.Config{})
	for i := 0; i < 50; i++ {
		if err := ref.Insert(Row{value.NewInt(int64(i)), value.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Insert(Row{value.NewInt(1000), value.NewString("y")}); err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"id", "name"} {
		got := fmt.Sprint(sketchSig(t, tab, attr).Hashes())
		want := fmt.Sprint(sketchSig(t, ref, attr).Hashes())
		if got != want {
			t.Fatalf("%s: rollback left sketch residue:\ngot  %s\nwant %s", attr, got, want)
		}
	}
	if s := sketchSig(t, tab, "name"); s.Contains(sketch.HashValue(value.NewString("z"))) {
		t.Fatal("rolled-back value still in signature")
	}
}

func TestSketchesNilOnRowEngine(t *testing.T) {
	tab := NewWithEngine(sketchTestSchema(t), EngineRow)
	if tab.EnableSketches(sketch.Config{}) != nil || tab.Sketches() != nil {
		t.Fatal("row engine must report no sketches (exact-only)")
	}
}

func TestSketchesConcurrentEnable(t *testing.T) {
	tab := New(sketchTestSchema(t))
	results := make(chan *TableSketches, 8)
	for i := 0; i < 8; i++ {
		go func() { results <- tab.EnableSketches(sketch.Config{}) }()
	}
	first := <-results
	for i := 1; i < 8; i++ {
		if s := <-results; s != first {
			t.Fatal("concurrent EnableSketches returned distinct sketch sets")
		}
	}
}

// Table-side maintenance of the approximate discovery tier's sketches:
// per-column HyperLogLog + bottom-k signatures over the dictionary, and a
// deterministic bottom-k row sample, all advanced incrementally behind
// consumed-watermark bookkeeping. The columnar dictionary is append-only
// under every mutation path except the strict-mode batch rollback, so
// "new distinct values" are exactly the dictionary suffix past the
// watermark; a shrink (rollback) rebuilds the affected column's sketches
// from scratch, which is sound because sketch state is a pure function of
// the value set.
package table

import (
	"sync"

	"dbre/internal/sketch"
)

// TableSketches is the incremental sketch set of one columnar table. All
// advancement happens under an internal mutex; reads of the returned
// sketch objects are safe once caught up, under the engine-wide rule that
// reads and mutations of a table are not concurrent.
type TableSketches struct {
	mu  sync.Mutex
	t   *Table
	cfg sketch.Config
	// cols[i] sketches column i; consumed[i] is the dictionary watermark
	// (entries [0, consumed[i]) have been fed to cols[i]).
	cols     []*sketch.Column
	consumed []int
	// sample holds the bottom-k row sample; sampleRows is its row
	// watermark, sampleCache the rows slice memoized per sample state.
	sample      *sketch.RowSample
	sampleRows  int
	sampleCache []int32
	builds      int64
}

// EnableSketches turns on incremental sketch maintenance for the table,
// returning the (possibly pre-existing) sketch set. The zero Config
// selects defaults; a later call's config is ignored if sketches already
// exist. Returns nil on the row engine — sketch consumers treat a nil
// sketch set as "escalate everything", so the row engine stays exact-only
// with identical results. Safe for concurrent callers.
func (t *Table) EnableSketches(cfg sketch.Config) *TableSketches {
	if t.columns == nil {
		return nil
	}
	if s := t.sketches.Load(); s != nil {
		return s
	}
	s := &TableSketches{
		t:        t,
		cfg:      cfg.WithDefaults(),
		cols:     make([]*sketch.Column, len(t.columns)),
		consumed: make([]int, len(t.columns)),
	}
	for i := range s.cols {
		s.cols[i] = sketch.NewColumn(s.cfg)
	}
	s.sample = sketch.NewRowSample(s.cfg.SampleK)
	if t.sketches.CompareAndSwap(nil, s) {
		return s
	}
	return t.sketches.Load()
}

// Sketches returns the table's sketch set, or nil if never enabled (or
// row engine).
func (t *Table) Sketches() *TableSketches { return t.sketches.Load() }

// Config returns the knobs the sketch set was built with.
func (s *TableSketches) Config() sketch.Config { return s.cfg }

// CatchUp advances every column sketch over dictionary entries appended
// since the last pass and the row sample over appended rows, returning
// the number of passes that did work (the sketch-build counter's unit).
// A shrunken dictionary or row count — strict-mode batch rollback —
// triggers a rebuild of the affected sketch from scratch.
func (s *TableSketches) CatchUp() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	work := 0
	for ci := range s.t.columns {
		// A deferred column section has nothing new to consume; its
		// watermark stays put until a reader (Column) materializes it.
		// Skipping also keeps CatchUp race-free against a concurrent
		// section load installing the dict.
		if !s.t.colLoaded(ci) {
			continue
		}
		dict := s.t.columns[ci].dict
		if len(dict) < s.consumed[ci] {
			s.cols[ci] = sketch.NewColumn(s.cfg)
			s.consumed[ci] = 0
		}
		if len(dict) > s.consumed[ci] {
			col := s.cols[ci]
			for _, v := range dict[s.consumed[ci]:] {
				col.AddValue(v)
			}
			s.consumed[ci] = len(dict)
			work++
		}
	}
	if s.t.nrows < s.sampleRows {
		s.sample = sketch.NewRowSample(s.cfg.SampleK)
		s.sampleRows = 0
		s.sampleCache = nil
	}
	if s.t.nrows > s.sampleRows {
		for i := s.sampleRows; i < s.t.nrows; i++ {
			s.sample.AddRow(i)
		}
		s.sampleRows = s.t.nrows
		s.sampleCache = nil
		work++
	}
	s.builds += int64(work)
	return work
}

// Column returns the caught-up sketch of the column holding attr, or nil
// if the attribute does not exist. The per-row Insert paths do not push
// into the sketches, so accessors catch up lazily here.
func (s *TableSketches) Column(attr string) *sketch.Column {
	ci, ok := s.t.cols[attr]
	if !ok {
		return nil
	}
	s.t.ensureCol(ci)
	s.CatchUp()
	return s.cols[ci]
}

// SampleRows returns the caught-up deterministic row sample, in hash
// order. The slice is shared between callers and must not be mutated.
func (s *TableSketches) SampleRows() []int32 {
	s.CatchUp()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sampleCache == nil {
		s.sampleCache = s.sample.Rows()
	}
	return s.sampleCache
}

// Builds returns the cumulative number of build/catch-up passes.
func (s *TableSketches) Builds() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builds
}

// Epoch-versioned reads: MVCC-lite snapshots of the columnar engine.
//
// An epoch is a frozen, immutable view of one table at a batch commit
// point: a lightweight Table clone whose code vectors and dictionaries
// are capped sub-slices of the live column storage. Sharing is sound
// because both stores are append-only past every commit point — appends
// only write indexes beyond the published caps, and the strict-mode
// batch rollback truncates to keep ≥ base, where base is itself ≥ every
// previously committed row count (and keepDict ≥ baseDict ≥ every
// previously committed dictionary length), so re-grown storage never
// overwrites bytes inside a published cap.
//
// The live table republishes its epoch at the end of every AppendBatch
// (commit and rollback alike land on a consistent post-batch state);
// the per-row insert paths just clear the pointer, so a later pin
// rebuilds from a quiescent table. Pinning is a single atomic load —
// discovery can run over a pinned epoch while ingest keeps appending to
// the live table, with results consistent with the pinned commit point.
//
// The row engine has no epochs: it keeps the original
// reads-and-mutations-are-not-concurrent contract, and PinEpoch returns
// the table itself.
package table

// publishEpoch installs a fresh frozen snapshot of the current commit
// point. Called by the mutation paths only (never concurrently with
// itself); readers race only against the atomic store.
func (t *Table) publishEpoch() {
	if t.columns == nil || t.frozen {
		return
	}
	t.ensureAll()
	t.epoch.Store(t.freeze())
}

// freeze builds the frozen clone: capped views of codes and dict, copied
// counters, no interning maps, no constraint indexes, no lazy state. The
// clone costs O(columns) slice headers — no row or dictionary data is
// copied.
func (t *Table) freeze() *Table {
	n := t.nrows
	f := &Table{
		schema:      t.schema,
		cols:        t.cols,
		columns:     make([]column, len(t.columns)),
		nrows:       n,
		version:     t.version,
		frozen:      true,
		origin:      t,
		abytes:      t.abytes,
		abytesValid: t.abytesValid,
	}
	for ci := range t.columns {
		c := &t.columns[ci]
		dl := len(c.dict)
		f.columns[ci] = column{
			codes:   c.codes[:n:n],
			dict:    c.dict[:dl:dl],
			nonNull: c.nonNull,
			nonInt:  c.nonInt,
		}
	}
	return f
}

// PinEpoch returns the table's current epoch: an immutable snapshot of
// the last batch commit point, safe to read while AppendBatch keeps
// mutating the live table. When no epoch is published yet (a freshly
// built table, or one mutated through the per-row insert paths since),
// the first pin builds one — that first pin requires the caller to be
// quiescent with respect to writers, exactly like any other read today.
// On the row engine and on already-frozen tables it returns the table
// itself.
func (t *Table) PinEpoch() *Table {
	if t.columns == nil || t.frozen {
		return t
	}
	if e := t.epoch.Load(); e != nil {
		return e
	}
	t.publishEpoch()
	return t.epoch.Load()
}

// Frozen reports whether the table is an immutable epoch snapshot.
func (t *Table) Frozen() bool { return t.frozen }

// EpochOrigin identifies the append-only history a table belongs to: the
// live table a frozen clone was cut from, or the table itself when live.
// Two tables with the same origin are commit points of one history, so a
// version delta that equals the row delta certifies that the newer view
// is the older view plus appended rows — the certificate the stats cache
// uses to extend projections across epoch republications.
func (t *Table) EpochOrigin() *Table {
	if t.origin != nil {
		return t.origin
	}
	return t
}

// invalidateEpoch drops the published snapshot; the per-row mutation
// paths call it because they commit after every single row, which is
// far too fine-grained to republish.
func (t *Table) invalidateEpoch() {
	if t.columns != nil {
		t.epoch.Store(nil)
	}
}

// PinEpoch snapshots the whole database: a cloned catalog (so schema
// additions and replacements against the pinned view — NEI
// conceptualization, restructuring, key inference — never touch the
// live catalog) over one pinned epoch per table. The snapshot is
// consistent per table at that table's last commit point; it is safe
// concurrently with AppendBatch on existing relations, but not with
// catalog mutation or per-row inserts on the live database, which keep
// their quiescent-only contract.
func (db *Database) PinEpoch() *Database {
	cat := db.catalog.Clone()
	out := &Database{
		catalog: cat,
		tables:  make(map[string]*Table, len(db.tables)),
		engine:  db.engine,
	}
	for name, t := range db.tables {
		out.tables[name] = t.PinEpoch()
	}
	return out
}

// Epoch sums the version counters of every relation: a single number
// that changes whenever any extension changes, cheap enough to expose
// per status poll. Meaningful when computed at a commit point (the job
// server computes it under its own mutation lock).
func (db *Database) Epoch() uint64 {
	var e uint64
	for _, t := range db.tables {
		e += t.version
	}
	return e
}

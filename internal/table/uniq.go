// Uniqueness enforcement. Each declared UNIQUE constraint owns one
// uniqIndex. The row engine registers every accepted row under its
// canonical composite value key (keyOf), exactly as the original
// implementation did — it stays the reference. The columnar engine
// instead registers rows under the *global dictionary codes* of the key
// attributes: a dense code → row array for single-attribute constraints
// (the overwhelmingly common case — keys and foreign keys) and a packed
// little-endian code-tuple map for composites. Probing by code needs no
// per-row string construction, which is what makes the batch appender's
// constraint post-pass (append.go) columnar rather than hash-per-row.
//
// Rows that were *rejected* still leave registrations behind: Insert
// registers each constraint before checking the next one, so a row
// failing constraint k has already registered constraints 0..k-1 (and a
// strict batch rollback removes the row but keeps those registrations,
// matching Insert). Such phantom registrations cannot use codes — the
// rejected row's values may never be interned — so they land in byKey,
// keyed by value. byKey is consulted only when non-empty, which keeps
// the clean-load hot path free of string keys.
package table

import "encoding/binary"

// uniqIndex enforces one declared UNIQUE constraint.
type uniqIndex struct {
	idx []int // column indexes of the constraint's attributes
	// byKey maps canonical composite value keys (keyOf) to the row index
	// registered under them. The row engine uses it for every
	// registration; the columnar engine only for phantom registrations
	// of rejected rows (see the package comment above).
	byKey map[string]int
	// dense maps a single key attribute's dictionary code to the
	// registered row index (-1 = unregistered). Columnar engine,
	// len(idx) == 1 only.
	dense []int32
	// packed maps little-endian packed code tuples to the registered row
	// index. Columnar engine, len(idx) > 1 only.
	packed map[string]int32
}

func newUniqIndex(idx []int, engine Engine) *uniqIndex {
	u := &uniqIndex{idx: idx}
	if engine == EngineRow {
		u.byKey = make(map[string]int)
	}
	return u
}

// packCodes appends the 4-byte little-endian encoding of each code to b.
// Codes are non-negative (NULL keys are rejected before packing) and the
// tuple width is fixed per constraint, so the packing is injective.
func packCodes(b []byte, codes []int32) []byte {
	for _, c := range codes {
		b = binary.LittleEndian.AppendUint32(b, uint32(c))
	}
	return b
}

// probeCodes reports whether the code tuple is registered (columnar
// engine). scratch is reused for packing composite tuples.
func (u *uniqIndex) probeCodes(codes []int32, scratch *[]byte) (prev int, dup bool) {
	if len(u.idx) == 1 {
		c := codes[0]
		if int(c) < len(u.dense) {
			if p := u.dense[c]; p >= 0 {
				return int(p), true
			}
		}
		return 0, false
	}
	if u.packed == nil {
		return 0, false
	}
	key := packCodes((*scratch)[:0], codes)
	*scratch = key
	if p, ok := u.packed[string(key)]; ok {
		return int(p), true
	}
	return 0, false
}

// registerCodes records the code tuple at row (columnar engine). The
// caller must have probed first: registration never overwrites.
func (u *uniqIndex) registerCodes(codes []int32, row int, scratch *[]byte) {
	if len(u.idx) == 1 {
		c := int(codes[0])
		for len(u.dense) <= c {
			u.dense = append(u.dense, -1)
		}
		u.dense[c] = int32(row)
		return
	}
	key := packCodes((*scratch)[:0], codes)
	*scratch = key
	if u.packed == nil {
		u.packed = make(map[string]int32)
	}
	u.packed[string(key)] = int32(row)
}

// probeByKey checks the value-keyed registrations (row engine, and
// columnar phantoms). key must be the keyOf encoding over u.idx.
func (u *uniqIndex) probeByKey(key string) (prev int, dup bool) {
	p, ok := u.byKey[key]
	return p, ok
}

// registerByKey records a value-keyed registration.
func (u *uniqIndex) registerByKey(key string, row int) {
	if u.byKey == nil {
		u.byKey = make(map[string]int)
	}
	u.byKey[key] = row
}

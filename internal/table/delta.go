// Delta partition refinement: extending a cached projection over rows
// appended since it was built, instead of refining the whole table from
// scratch. The group-id algebra that makes this exact:
//
//   - Group ids are dense and assigned in first-occurrence row order
//     (both engines, see columnar.go). A from-scratch rebuild over the
//     grown table therefore assigns ids [0, G) to the composites that
//     occur in the old prefix — in the same order the old build did,
//     because the prefix is unchanged — and fresh ids G, G+1, ... to
//     composites whose first occurrence lies in the delta, in delta
//     first-occurrence order.
//   - An extension that keeps the old vector verbatim, maps delta rows
//     of known composites to their old ids, and hands out fresh dense
//     ids to new composites in delta order produces exactly that
//     assignment. Extension and rebuild are bit-identical, which
//     FuzzDeltaRefine and the stats differential tests check.
//
// Cost: O(G·k) to seed the composite lookup from the group
// representatives plus O(d·k) for d delta rows, versus O(n·k) dense
// refinement for the rebuild — the win is the table scan avoided, and
// it compounds across every cached projection a re-validation touches.
package table

// Reps returns the group-id → representative-row-index vector: for each
// group, the first row belonging to it. Multi-attribute columnar
// projections carry this from the refinement kernel; everything else
// derives it from one scan of RowGroup (ids are dense in
// first-occurrence order, so the first row seen per id is the
// representative). The result is cached and safe for concurrent
// callers; treat it as read-only.
func (p *Projection) Reps() []int32 {
	p.repsOnce.Do(func() {
		if p.lazy != nil && p.lazy.reps != nil {
			p.repsV = p.lazy.reps
			return
		}
		reps := make([]int32, p.groups)
		for i := range reps {
			reps[i] = -1
		}
		seen := 0
		for i, id := range p.RowGroup {
			if id >= 0 && reps[id] < 0 {
				reps[id] = int32(i)
				seen++
				if seen == p.groups {
					break
				}
			}
		}
		p.repsV = reps
	})
	return p.repsV
}

// ExtendProjection extends prev — a projection over attrs built when
// the table had prevRows rows — to cover the table's current extension,
// bit-identical to rebuilding from scratch (see the package comment
// above for why). Returns nil when the projection cannot be extended
// (row engine, missing lazy state, or a shape mismatch), in which case
// the caller falls back to a full build. Valid only under append-only
// growth between commit points: rows [0, prevRows) and the dictionary
// prefixes behind them must be unchanged, which the engine guarantees
// for projections captured at commit points (see epoch.go).
func (t *Table) ExtendProjection(attrs []string, prev *Projection, prevRows int) *Projection {
	if t.columns == nil || prev == nil || prev.lazy == nil {
		return nil
	}
	idx, err := t.colIndexes(attrs)
	if err != nil {
		return nil
	}
	n := t.nrows
	if prevRows > n || len(prev.RowGroup) != prevRows {
		return nil
	}
	t.ensureCols(idx)
	if len(idx) == 1 {
		// The code vector is itself the grown group vector; the fresh
		// projection shares it at the new cap for free.
		return t.columnarProjection(idx)
	}
	prevReps := prev.Reps()
	if prevReps == nil {
		return nil
	}
	g := make([]int32, n)
	copy(g, prev.RowGroup)
	groups := prev.groups
	reps := make([]int32, groups, groups+(n-prevRows)/2+1)
	copy(reps, prevReps)
	nonNull := prev.NonNull

	cols := make([]*column, len(idx))
	for j, ci := range idx {
		cols[j] = &t.columns[ci]
	}
	if len(idx) == 2 {
		// Fast path: pack the two codes into one int64 key.
		c0, c1 := cols[0], cols[1]
		seed := make(map[int64]int32, groups)
		for id, ri := range reps {
			seed[int64(c0.codes[ri])<<32|int64(uint32(c1.codes[ri]))] = int32(id)
		}
		for i := prevRows; i < n; i++ {
			a, b := c0.codes[i], c1.codes[i]
			if a == nullCode || b == nullCode {
				g[i] = nullCode
				continue
			}
			nonNull++
			key := int64(a)<<32 | int64(uint32(b))
			id, ok := seed[key]
			if !ok {
				id = int32(groups)
				groups++
				seed[key] = id
				reps = append(reps, int32(i))
			}
			g[i] = id
		}
	} else {
		seed := make(map[string]int32, groups)
		var scratch []byte
		pack := func(row int32) []byte {
			scratch = scratch[:0]
			for _, c := range cols {
				code := c.codes[row]
				scratch = append(scratch, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
			}
			return scratch
		}
		for id, ri := range reps {
			seed[string(pack(ri))] = int32(id)
		}
	delta:
		for i := prevRows; i < n; i++ {
			for _, c := range cols {
				if c.codes[i] == nullCode {
					g[i] = nullCode
					continue delta
				}
			}
			nonNull++
			key := pack(int32(i))
			id, ok := seed[string(key)]
			if !ok {
				id = int32(groups)
				groups++
				seed[string(key)] = id
				reps = append(reps, int32(i))
			}
			g[i] = id
		}
	}
	reps = reps[:len(reps):len(reps)]
	p := &Projection{
		RowGroup: g,
		NonNull:  nonNull,
		groups:   groups,
		lazy:     &lazyDict{tab: t, idx: idx, reps: reps},
	}
	p.repsV = reps
	p.repsOnce.Do(func() {})
	return p
}

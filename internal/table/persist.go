// Persistence bridge. The storage layer (internal/storage) serializes a
// columnar table's engine state — code vectors, dictionaries, running
// counters, uniqueness registrations, sketch configuration — and rebuilds
// an identical table from it. This file exposes exactly that state, in
// both directions, so the on-disk format stays a storage concern while
// the engine invariants (what is state, what is rebuildable scratch) stay
// a table concern.
//
// What is persisted and what is derived:
//
//   - codes/dict per column, nrows, version, nonNull/nonInt counters:
//     persisted verbatim — they ARE the engine state.
//   - the ints/keys interning maps: derived (rebuilt from the dictionary
//     on the first mutation; pure readers never need them).
//   - uniqueness state (dense, packed, byKey): persisted verbatim. The
//     byKey phantoms of rejected rows reference values that were never
//     stored, so no replay over the surviving rows can reconstruct them —
//     and later inserts must still collide with them (see uniq.go).
//   - sketches: only the enabled flag and Config are persisted. Sketch
//     state is a pure function of the dictionary prefix consumed, so a
//     restored table rebuilds identical sketches on first access.
//
// Restored tables may be lazy: RestoreTableLazy defers every column's
// codes/dict behind a ColumnLoader, and every read path of the engine
// funnels through ensureCol/ensureAll, so a discovery phase touches only
// the column sections it actually reads.
package table

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dbre/internal/relation"
	"dbre/internal/sketch"
	"dbre/internal/value"
)

// ColumnState is the serializable state of one dictionary-encoded column.
// Codes and Dict are nil for a column whose section has not been loaded
// yet (lazy restore); DictLen and Bytes describe it regardless, so
// distinct counts and footprint estimates never force a load.
type ColumnState struct {
	Codes   []int32
	Dict    []value.Value
	NonNull int
	NonInt  bool
	// DictLen is len(Dict) even when Dict is deferred — the O(1)
	// single-attribute distinct count.
	DictLen int
	// Bytes is the column's estimated resident size once loaded (the
	// ApproxBytes contribution), kept so admission control on a lazily
	// opened database does not defeat the laziness.
	Bytes int64
}

// UniqState is the serializable state of one UNIQUE constraint's index:
// the code-keyed registrations (dense for single-attribute constraints,
// packed for composites) plus the value-keyed phantom registrations of
// rejected rows. See uniq.go for why all three are state, not cache.
type UniqState struct {
	Dense  []int32
	Packed map[string]int32
	ByKey  map[string]int
}

// SketchState records whether the approximate tier was enabled and with
// which knobs. Sketch contents are not persisted: they are rebuilt
// deterministically from the restored dictionaries (sketch state is a
// pure function of the value set).
type SketchState struct {
	Enabled bool
	Config  sketch.Config
}

// TableState is the complete serializable engine state of one columnar
// table. PersistState returns it; RestoreTable consumes it.
type TableState struct {
	NRows   int
	Version uint64
	Columns []ColumnState
	Uniqs   []UniqState
	Sketch  SketchState
}

// PersistState snapshots the table's engine state for serialization. The
// returned slices and maps are views into live storage — read-only, valid
// until the next mutation. It errors on the row engine: persistence is a
// columnar-engine feature.
func (t *Table) PersistState() (*TableState, error) {
	if t.columns == nil {
		return nil, fmt.Errorf("table %s: persistence requires the columnar engine", t.schema.Name)
	}
	t.ensureAll()
	st := &TableState{
		NRows:   t.nrows,
		Version: t.version,
		Columns: make([]ColumnState, len(t.columns)),
	}
	// Empty slices and maps are normalized to nil so that equal engine
	// states always produce DeepEqual states (a strict-mode rollback can
	// leave empty-but-allocated storage behind).
	for i := range t.columns {
		c := &t.columns[i]
		cs := ColumnState{
			NonNull: c.nonNull,
			NonInt:  c.nonInt,
			DictLen: len(c.dict),
			Bytes:   columnBytes(c),
		}
		if t.nrows > 0 {
			cs.Codes = c.codes[:t.nrows:t.nrows]
		}
		if len(c.dict) > 0 {
			cs.Dict = c.dict[:len(c.dict):len(c.dict)]
		}
		st.Columns[i] = cs
	}
	for _, u := range t.uniq {
		us := UniqState{}
		if len(u.dense) > 0 {
			us.Dense = u.dense[:len(u.dense):len(u.dense)]
		}
		if len(u.packed) > 0 {
			us.Packed = u.packed
		}
		if len(u.byKey) > 0 {
			us.ByKey = u.byKey
		}
		st.Uniqs = append(st.Uniqs, us)
	}
	if s := t.sketches.Load(); s != nil {
		st.Sketch = SketchState{Enabled: true, Config: s.cfg}
	}
	return st, nil
}

// ColumnLoader supplies deferred column sections to a lazily restored
// table. LoadColumn returns the column's Codes and Dict (the other
// ColumnState fields are ignored — they were restored eagerly from the
// table metadata). Implementations must be safe for concurrent calls on
// distinct columns; the table serializes calls per column.
type ColumnLoader interface {
	LoadColumn(ci int) (ColumnState, error)
}

// lazyCols tracks the not-yet-materialized columns of a restored table.
// once serializes racing loads per column; loaded flips to true only
// after codes/dict are installed (its atomic store/load pair is the
// happens-before edge concurrent readers rely on).
type lazyCols struct {
	loader  ColumnLoader
	once    []sync.Once
	loaded  []atomic.Bool
	dictLen []int
	bytes   []int64
	pending atomic.Int32
}

// RestoreTable rebuilds a columnar table from persisted state, eagerly.
// The table takes ownership of the state's slices and maps; callers must
// pass freshly decoded state, never the live views of PersistState.
func RestoreTable(schema *relation.Schema, st *TableState) (*Table, error) {
	return restoreTable(schema, st, nil)
}

// RestoreTableLazy is RestoreTable with every column's codes/dict
// deferred behind loader: metadata (row count, version, counters,
// uniqueness state, sketch config) is installed now, and each column
// section is fetched on the first read that touches it. A load failure
// after restore panics (the storage layer verifies every section checksum
// before handing out a loader, so a failure here means the file was
// mutated or lost underneath an open database).
func RestoreTableLazy(schema *relation.Schema, st *TableState, loader ColumnLoader) (*Table, error) {
	if loader == nil {
		return nil, fmt.Errorf("table %s: nil ColumnLoader", schema.Name)
	}
	return restoreTable(schema, st, loader)
}

func restoreTable(schema *relation.Schema, st *TableState, loader ColumnLoader) (*Table, error) {
	if len(st.Columns) != len(schema.Attrs) {
		return nil, fmt.Errorf("table %s: state has %d columns, schema %d", schema.Name, len(st.Columns), len(schema.Attrs))
	}
	if len(st.Uniqs) != len(schema.Uniques) {
		return nil, fmt.Errorf("table %s: state has %d unique indexes, schema %d", schema.Name, len(st.Uniqs), len(schema.Uniques))
	}
	t := NewWithEngine(schema, EngineColumnar)
	t.nrows = st.NRows
	t.version = st.Version
	t.internStale = true
	for i := range st.Columns {
		cs := &st.Columns[i]
		c := &t.columns[i]
		c.nonNull = cs.NonNull
		c.nonInt = cs.NonInt
		if loader == nil {
			if err := validateColumn(schema, i, cs.Codes, cs.Dict, cs, st.NRows); err != nil {
				return nil, err
			}
			c.codes = cs.Codes
			c.dict = cs.Dict
		}
	}
	if loader != nil {
		nc := len(t.columns)
		l := &lazyCols{
			loader:  loader,
			once:    make([]sync.Once, nc),
			loaded:  make([]atomic.Bool, nc),
			dictLen: make([]int, nc),
			bytes:   make([]int64, nc),
		}
		for i := range st.Columns {
			l.dictLen[i] = st.Columns[i].DictLen
			l.bytes[i] = st.Columns[i].Bytes
		}
		l.pending.Store(int32(nc))
		t.lazy = l
	}
	for ui := range st.Uniqs {
		us := &st.Uniqs[ui]
		u := t.uniq[ui]
		u.dense = us.Dense
		u.packed = us.Packed
		u.byKey = us.ByKey
	}
	if st.Sketch.Enabled {
		t.EnableSketches(st.Sketch.Config)
	}
	return t, nil
}

// validateColumn checks the engine invariants of one column's loaded
// state: vector lengths match the declared row and dictionary counts,
// every code addresses the dictionary (or is the NULL marker), the
// dictionary holds no NULLs, and the non-NULL counter agrees with the
// codes. The checks are what make a later dict[code] access memory-safe,
// so they run on every restore and every lazy section load.
func validateColumn(schema *relation.Schema, ci int, codes []int32, dict []value.Value, cs *ColumnState, nrows int) error {
	attr := schema.Attrs[ci].Name
	if len(codes) != nrows {
		return fmt.Errorf("table %s column %s: %d codes for %d rows", schema.Name, attr, len(codes), nrows)
	}
	if len(dict) != cs.DictLen {
		return fmt.Errorf("table %s column %s: dictionary has %d entries, metadata says %d", schema.Name, attr, len(dict), cs.DictLen)
	}
	for _, v := range dict {
		if v.IsNull() {
			return fmt.Errorf("table %s column %s: NULL in dictionary", schema.Name, attr)
		}
	}
	nonNull := 0
	for _, code := range codes {
		if code >= 0 {
			if int(code) >= len(dict) {
				return fmt.Errorf("table %s column %s: code %d exceeds dictionary length %d", schema.Name, attr, code, len(dict))
			}
			nonNull++
		} else if code != nullCode {
			return fmt.Errorf("table %s column %s: invalid code %d", schema.Name, attr, code)
		}
	}
	if nonNull != cs.NonNull {
		return fmt.Errorf("table %s column %s: %d non-NULL codes, metadata says %d", schema.Name, attr, nonNull, cs.NonNull)
	}
	return nil
}

// ensureCol materializes column ci of a lazily restored table. The fast
// path — no lazy state, or the column already loaded — is a nil check
// plus sync.Once's atomic load; every read path of the engine funnels
// through here (or ensureAll) before touching codes or dict.
func (t *Table) ensureCol(ci int) {
	l := t.lazy
	if l == nil {
		return
	}
	l.once[ci].Do(func() {
		cs, err := l.loader.LoadColumn(ci)
		if err == nil {
			meta := &ColumnState{NonNull: t.columns[ci].nonNull, DictLen: l.dictLen[ci]}
			err = validateColumn(t.schema, ci, cs.Codes, cs.Dict, meta, t.nrows)
		}
		if err != nil {
			panic(fmt.Errorf("table %s: loading column %s: %w", t.schema.Name, t.schema.Attrs[ci].Name, err))
		}
		c := &t.columns[ci]
		c.codes = cs.Codes
		c.dict = cs.Dict
		l.loaded[ci].Store(true)
		l.pending.Add(-1)
	})
}

// ensureAll materializes every deferred column.
func (t *Table) ensureAll() {
	if t.lazy == nil {
		return
	}
	for ci := range t.columns {
		t.ensureCol(ci)
	}
}

// ensureCols materializes the deferred columns among idx.
func (t *Table) ensureCols(idx []int) {
	if t.lazy == nil {
		return
	}
	for _, ci := range idx {
		t.ensureCol(ci)
	}
}

// colLoaded reports whether column ci's codes/dict are resident. True on
// tables that were never lazily restored. The atomic load pairs with the
// store in ensureCol, so a true result also orders the reader after the
// install.
func (t *Table) colLoaded(ci int) bool {
	return t.lazy == nil || t.lazy.loaded[ci].Load()
}

// dictLen returns the column's dictionary length without forcing a
// deferred section load — the O(1) distinct count works off metadata.
func (t *Table) dictLen(ci int) int {
	if t.lazy != nil && !t.lazy.loaded[ci].Load() {
		return t.lazy.dictLen[ci]
	}
	return len(t.columns[ci].dict)
}

// Preload materializes every deferred column section of a lazily
// restored table. After it returns the table never touches its loader
// again, so the storage layer may close the underlying file.
func (t *Table) Preload() { t.ensureAll() }

// PendingColumns reports how many column sections of a lazily restored
// table have not been materialized yet (0 on every other table). The
// stats-cache laziness test and the open-info accounting read it.
func (t *Table) PendingColumns() int {
	if t.lazy == nil {
		return 0
	}
	return int(t.lazy.pending.Load())
}

// ensureMutable prepares a restored table for mutation: every deferred
// column is materialized and the ints/keys interning maps — derived
// state the restore skipped — are rebuilt from the dictionaries. Pure
// readers never pay for this; every mutation path (Insert,
// InsertUnchecked, AppendBatch) calls it first.
func (t *Table) ensureMutable() {
	if t.frozen {
		panic(fmt.Sprintf("table %s: mutating a frozen epoch snapshot", t.schema.Name))
	}
	if t.columns == nil || !t.internStale {
		return
	}
	t.ensureAll()
	for i := range t.columns {
		c := &t.columns[i]
		if len(c.dict) > 0 && c.ints == nil && c.keys == nil {
			c.rebuildIntern()
		}
	}
	t.internStale = false
}

// rebuildIntern reconstructs the interning maps from the dictionary,
// mirroring intern()'s population exactly: KindInt payloads into ints,
// the canonical Key() encoding of everything else into keys.
func (c *column) rebuildIntern() {
	for id, v := range c.dict {
		if v.Kind() == value.KindInt {
			if c.ints == nil {
				c.ints = make(map[int64]int32, len(c.dict))
			}
			c.ints[v.Int()] = int32(id)
		} else {
			if c.keys == nil {
				c.keys = make(map[string]int32, len(c.dict))
			}
			c.keys[v.Key()] = int32(id)
		}
	}
}

// columnBytes is one column's ApproxBytes contribution (codes, boxed
// dictionary values, interning-map overhead).
func columnBytes(c *column) int64 {
	b := int64(len(c.codes)) * 4
	for _, v := range c.dict {
		b += valueBytes(v)
	}
	// The ints/keys interning maps hold one entry per dictionary
	// code: ~16 bytes of bucket overhead beyond the key payload
	// already counted through the dictionary.
	b += int64(len(c.dict)) * 16
	return b
}

// DecodeRow decodes the i-th encoded row of the chunk into buf (grown
// when too small). The returned row is valid until the next call with
// the same buffer; journaling loaders use it to materialize the rows a
// batch is about to commit.
func (e *ChunkEncoder) DecodeRow(i int, buf Row) Row {
	if len(buf) < len(e.cols) {
		buf = make(Row, len(e.cols))
	}
	return e.row(i, buf[:len(e.cols)])
}

// RestoreDatabase rebuilds a database over catalog with one restored
// table per relation, on the columnar engine. restore is called once per
// relation in catalog order and must return the relation's table built
// over the catalog's own schema pointer (RestoreTable/RestoreTableLazy
// with catalog.Get's schema do exactly that).
func RestoreDatabase(catalog *relation.Catalog, restore func(s *relation.Schema) (*Table, error)) (*Database, error) {
	db := &Database{
		catalog: catalog,
		tables:  make(map[string]*Table, catalog.Len()),
		engine:  EngineColumnar,
	}
	for _, s := range catalog.Schemas() {
		t, err := restore(s)
		if err != nil {
			return nil, err
		}
		if t.schema != s {
			return nil, fmt.Errorf("table %s: restored over a foreign schema", s.Name)
		}
		db.tables[s.Name] = t
	}
	return db, nil
}

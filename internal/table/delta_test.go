package table

import (
	"fmt"
	"math/rand"
	"testing"

	"dbre/internal/relation"
	"dbre/internal/value"
)

// Property and fuzz tests for delta partition refinement: extending a
// projection captured at a commit point over appended rows must be
// bit-identical to refining the grown table from scratch, across the
// two-attribute fast path, the packed general path, and the shared
// single-column path.

// deltaAppend grows tab by n random rows through the per-row path —
// append-only, so projections captured beforehand stay extendable.
func deltaAppend(tab *Table, rng *rand.Rand, n int) {
	kinds := []value.Kind{value.KindInt, value.KindString, value.KindFloat}
	for i := 0; i < n; i++ {
		r := make(Row, len(kinds))
		for j, k := range kinds {
			r[j] = randValue(rng, k)
		}
		tab.InsertUnchecked(r)
	}
}

// sameReps asserts the representative vectors match where both exist.
func sameReps(t *testing.T, label string, want, got *Projection) {
	t.Helper()
	w, g := want.Reps(), got.Reps()
	if len(w) != len(g) {
		t.Fatalf("%s: reps length %d, want %d", label, len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: reps[%d] = %d, want %d", label, i, g[i], w[i])
		}
	}
}

// TestExtendProjectionBitIdentical grows randomized NULL-bearing tables
// past a captured projection and requires the extension to match the
// from-scratch rebuild exactly — group vector, non-NULL count, group
// count and representatives — for one, two and three attributes.
func TestExtendProjectionBitIdentical(t *testing.T) {
	attrSets := [][]string{{"i"}, {"i", "s"}, {"i", "s", "f"}}
	for seed := int64(0); seed < 15; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tab := New(refineSchema())
			base := 20 + rng.Intn(150)
			deltaAppend(tab, rng, base)
			prevs := make([]*Projection, len(attrSets))
			for i, attrs := range attrSets {
				prevs[i] = mustProj(t, tab, attrs)
			}
			deltaAppend(tab, rng, 1+rng.Intn(80))
			for i, attrs := range attrSets {
				label := fmt.Sprintf("attrs %v", attrs)
				got := tab.ExtendProjection(attrs, prevs[i], base)
				if got == nil {
					t.Fatalf("%s: ExtendProjection returned nil on the columnar engine", label)
				}
				want := mustProj(t, tab, attrs)
				sameProjection(t, label, want, got)
				if want.groups != got.groups {
					t.Errorf("%s: groups = %d, want %d", label, got.groups, want.groups)
				}
				sameReps(t, label, want, got)
			}
		})
	}
}

// TestExtendProjectionRefuses pins the fallback conditions: shape
// mismatches and the row engine must yield nil, never a wrong partition.
func TestExtendProjectionRefuses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := New(refineSchema())
	deltaAppend(tab, rng, 50)
	attrs := []string{"i", "s"}
	prev := mustProj(t, tab, attrs)
	deltaAppend(tab, rng, 10)
	if got := tab.ExtendProjection(attrs, prev, 40); got != nil {
		t.Error("prevRows mismatching the captured projection: want nil")
	}
	if got := tab.ExtendProjection(attrs, nil, 50); got != nil {
		t.Error("nil predecessor: want nil")
	}
	if got := tab.ExtendProjection([]string{"i", "nope"}, prev, 50); got != nil {
		t.Error("unknown attribute: want nil")
	}

	row := NewWithEngine(refineSchema(), EngineRow)
	deltaAppend(row, rng, 30)
	rp := mustProj(t, row, attrs)
	deltaAppend(row, rng, 5)
	if got := row.ExtendProjection(attrs, rp, 30); got != nil {
		t.Error("row engine: want nil (no delta extension)")
	}
}

// FuzzDeltaRefine lets the fuzzer choose the value domains, the NULL
// density, and the base/delta split, then requires extension ≡ rebuild
// on both multi-attribute paths. Exercised by the ci.sh fuzz smoke.
func FuzzDeltaRefine(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(40), uint8(25))
	f.Add(int64(42), uint8(1), uint8(1), uint8(0), uint8(90))
	f.Add(int64(-9), uint8(12), uint8(2), uint8(200), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, domA, domB, base, delta uint8) {
		rng := rand.New(rand.NewSource(seed))
		s := relation.MustSchema("F", []relation.Attribute{
			{Name: "a", Type: value.KindInt},
			{Name: "b", Type: value.KindInt},
			{Name: "c", Type: value.KindInt},
		})
		tab := New(s)
		da, db := int(domA)+1, int(domB)+1
		draw := func(dom int) value.Value {
			if rng.Intn(6) == 0 {
				return value.Null
			}
			return value.NewInt(int64(rng.Intn(dom)))
		}
		insert := func(n int) {
			for i := 0; i < n; i++ {
				tab.InsertUnchecked(Row{draw(da), draw(db), draw(da * db)})
			}
		}
		insert(int(base))
		pair := mustProj(t, tab, []string{"a", "b"})
		triple := mustProj(t, tab, []string{"a", "b", "c"})
		insert(int(delta))
		for _, c := range []struct {
			attrs []string
			prev  *Projection
		}{{[]string{"a", "b"}, pair}, {[]string{"a", "b", "c"}, triple}} {
			got := tab.ExtendProjection(c.attrs, c.prev, int(base))
			if got == nil {
				t.Fatalf("attrs %v: ExtendProjection returned nil", c.attrs)
			}
			want := mustProj(t, tab, c.attrs)
			sameProjection(t, fmt.Sprintf("attrs %v", c.attrs), want, got)
			sameReps(t, fmt.Sprintf("attrs %v", c.attrs), want, got)
		}
	})
}
